"""Mixed read/write workloads: DML round-trips, write-aware costing
bit-identity, the HTAP/OLTP/ECOMMERCE families, and the long-stream
drift fixes (S2 progress anchoring, archive retention, bounded monitor
logs).

The kernel contract extends unchanged to writes: exact agreement with
the scalar cost models — tolerance zero, on all three substrates — for
base costs, design costs, candidate matrices, and the batched design
sweep, now over workloads that mix SELECTs with INSERT/UPDATE/DELETE.
"""

from __future__ import annotations

import pickle
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costing.kernel import kernel_for
from repro.costing.service import CostEvaluationService
from repro.designers.base import ColumnarAdapter, RowstoreAdapter, SamplesAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.greedy import evaluate_candidates
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.harness.experiments import ExperimentContext, ExperimentScale
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.optimizer import SamplesCostModel
from repro.serve.config import ServeConfig
from repro.sql.ast import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
)
from repro.sql.formatter import format_statement
from repro.sql.parser import ParseError, parse
from repro.workload.distance import WorkloadDistance
from repro.workload.families import ecommerce_profile, htap_profile, oltp_profile
from repro.workload.generator import TraceGenerator, build_star_schema, s2_profile
from repro.workload.monitor import WorkloadMonitor
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

SUBSTRATES = ("columnar", "rowstore", "samples")


@lru_cache(maxsize=1)
def _environment():
    """A small star schema plus a pool of distinct mixed-DML queries."""
    schema, roles = build_star_schema(
        fact_tables=2,
        fact_rows=200_000,
        fact_attributes=10,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = htap_profile(queries_per_day=8, topic_count=2, templates_per_topic=3)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=30)
    sqls = list(dict.fromkeys(q.sql for q in trace))[:14]
    kinds = {type(parse(sql)) for sql in sqls}
    assert SelectStatement in kinds, "pool must mix reads with writes"
    assert kinds - {SelectStatement}, "pool must contain at least one write"
    return schema, sqls


@lru_cache(maxsize=None)
def _substrate(name: str):
    """(cost_model, candidate structures, profiles) per engine."""
    schema, sqls = _environment()
    if name == "columnar":
        model = ColumnarCostModel(schema)
        nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    elif name == "rowstore":
        model = RowstoreCostModel(schema)
        nominal = RowstoreNominalDesigner(RowstoreAdapter(model))
    else:
        model = SamplesCostModel(schema)
        nominal = SamplesNominalDesigner(SamplesAdapter(model))
    candidates = nominal.generate_candidates(Workload.from_sql(sqls))[:10]
    assert candidates, "the mixed pool must still yield read candidates"
    profiles = [model.profile(sql) for sql in sqls]
    return model, candidates, profiles


def _adapter(model):
    """A fresh adapter (own service, own caches) over a shared model."""
    service = CostEvaluationService(model)
    if isinstance(model, ColumnarCostModel):
        return ColumnarAdapter(model, costing=service)
    if isinstance(model, RowstoreCostModel):
        return RowstoreAdapter(model, costing=service)
    return SamplesAdapter(model, costing=service)


# -- DML round-trips ---------------------------------------------------------------


DML_STATEMENTS = [
    ("INSERT INTO fact_0 (a, b) VALUES (1, 2)", InsertStatement),
    ("INSERT INTO fact_0 (a, b) VALUES (1, 2), (3, 4), (5, 6)", InsertStatement),
    ("UPDATE fact_0 SET m = 3.5 WHERE a = 1", UpdateStatement),
    ("UPDATE fact_0 SET m = 1, n = 2 WHERE a BETWEEN 3 AND 9", UpdateStatement),
    ("UPDATE fact_0 SET m = 0", UpdateStatement),
    ("DELETE FROM fact_0 WHERE a = 1 AND b BETWEEN 2 AND 4", DeleteStatement),
    ("DELETE FROM fact_0", DeleteStatement),
]

MALFORMED_DML = [
    "INSERT INTO",
    "INSERT INTO fact_0 VALUES (1)",
    "INSERT INTO fact_0 (a) VALUES",
    "INSERT INTO fact_0 (a, b) VALUES (1)",
    "UPDATE fact_0 SET",
    "UPDATE SET a = 1",
    "UPDATE fact_0 SET a = 1 WHERE",
    "DELETE FROM",
    "DELETE fact_0 WHERE a = 1",
]


class TestDMLRoundTrip:
    @pytest.mark.parametrize("sql,kind", DML_STATEMENTS)
    def test_parse_format_parse_is_identity(self, sql, kind):
        stmt = parse(sql)
        assert isinstance(stmt, kind)
        assert parse(format_statement(stmt)) == stmt

    @pytest.mark.parametrize("sql", MALFORMED_DML)
    def test_malformed_dml_raises_parse_error(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_generated_writes_round_trip(self):
        """Every generator-emitted statement survives parse → format → parse."""
        _, sqls = _environment()
        for sql in sqls:
            stmt = parse(sql)
            assert parse(format_statement(stmt)) == stmt


# -- write-aware scalar cost models -----------------------------------------------


class TestWriteProfiles:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_write_profiles_flagged(self, substrate):
        model, _, profiles = _substrate(substrate)
        kinds = {p.statement_kind for p in profiles}
        assert "select" in kinds and kinds - {"select"}
        for p in profiles:
            assert p.is_write == (p.statement_kind != "select")
            if p.is_write:
                assert p.affected_rows >= 1

    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_maintenance_charges_touching_structures(self, substrate):
        """INSERTs (no locate path) cost strictly more under any touching
        structure; off-table structures never change a write's cost.
        UPDATE/DELETE may get *cheaper* under a same-table structure (the
        locate scan uses it), so strictness is only asserted for inserts."""
        model, candidates, profiles = _substrate(substrate)
        adapter = _adapter(model)
        writes = [p for p in profiles if p.is_write]
        assert writes
        empty = adapter.make_design([])
        charged = 0
        for profile in writes:
            base = model.query_cost(profile, empty)
            for candidate in candidates:
                single = adapter.make_design([candidate])
                cost = model.query_cost(profile, single)
                if all(candidate.table != t.table for t in profile.tables):
                    assert cost == base, (profile.statement_kind, candidate)
                elif profile.statement_kind == "insert" and model.write_touches(
                    profile, candidate
                ):
                    assert cost > base, (profile.statement_kind, candidate)
                    charged += 1
        assert charged > 0, "pool must exercise the maintenance charge"


# -- kernel bit-identity on mixed workloads ---------------------------------------


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    mask=st.integers(0, 1023),
    q_mask=st.integers(1, (1 << 14) - 1),
)
def test_kernel_write_costs_match_scalar_exactly(substrate, mask, q_mask):
    """``base_costs``/``design_costs`` equal the scalar model bit-for-bit
    on workloads mixing reads and writes."""
    model, candidates, profiles = _substrate(substrate)
    adapter = _adapter(model)
    kernel = kernel_for(model)
    assert kernel is not None
    chosen = [p for i, p in enumerate(profiles) if q_mask & (1 << i)]
    structures = [c for i, c in enumerate(candidates) if mask & (1 << i)]
    batch = kernel.compile(chosen, structures)

    empty = adapter.make_design([])
    design = adapter.make_design(structures)
    assert batch.base_costs().tolist() == [model.query_cost(p, empty) for p in chosen]
    assert batch.design_costs().tolist() == [
        model.query_cost(p, design) for p in chosen
    ]


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(substrate=st.sampled_from(SUBSTRATES), q_mask=st.integers(1, (1 << 14) - 1))
def test_kernel_write_candidate_matrix_matches_scalar(substrate, q_mask):
    """Candidate cells for writes are priced (maintenance), never
    unservable, and equal ``query_cost`` under the singleton design."""
    model, candidates, profiles = _substrate(substrate)
    adapter = _adapter(model)
    batch = kernel_for(model).compile(
        [p for i, p in enumerate(profiles) if q_mask & (1 << i)], candidates
    )
    chosen = [p for i, p in enumerate(profiles) if q_mask & (1 << i)]

    price, unservable = batch.candidate_frame()
    base = batch.base_costs()
    matrix = np.where(unservable, np.inf, np.broadcast_to(base, price.shape))
    matrix = np.where(price, batch.candidate_costs(), matrix)

    for c, candidate in enumerate(candidates):
        single = adapter.make_design([candidate])
        for q, profile in enumerate(chosen):
            if not profile.is_write:
                continue
            assert not unservable[c, q]
            if all(candidate.table != t.table for t in profile.tables):
                assert matrix[c, q] == base[q]
            else:
                assert matrix[c, q] == model.query_cost(profile, single)


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_evaluate_candidates_mixed_kernel_equals_scalar(substrate):
    """``designers.greedy.evaluate_candidates`` returns the same arrays on
    a mixed workload whether the service dispatches the kernel or not."""
    model, candidates, _ = _substrate(substrate)
    _, sqls = _environment()
    workload = Workload.from_sql(sqls)

    with_kernel = _adapter(model)
    evaluation = evaluate_candidates(with_kernel, workload, candidates)

    forced_scalar = _adapter(model)
    forced_scalar.costing.kernel = None
    reference = evaluate_candidates(forced_scalar, workload, candidates)

    assert np.array_equal(evaluation.base_costs, reference.base_costs)
    assert np.array_equal(evaluation.matrix, reference.matrix)
    assert with_kernel.costing.stats.write_pairs_priced > 0
    assert forced_scalar.costing.stats.write_pairs_priced > 0


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    masks=st.lists(st.integers(0, 1023), min_size=1, max_size=4),
)
def test_workload_costs_batch_mixed_matches_sequential(substrate, masks):
    """The batched design sweep (arena + delta re-costing) agrees with the
    scalar ``workload_cost`` per design on a mixed workload."""
    model, candidates, _ = _substrate(substrate)
    _, sqls = _environment()
    workload = Workload.from_sql(sqls)
    batched = _adapter(model)
    reference = _adapter(model)
    reference.costing.kernel = None

    designs = [
        batched.make_design([c for i, c in enumerate(candidates) if m & (1 << i)])
        for m in masks
    ]
    designs.append(batched.make_design([]))
    reports = batched.workload_costs_batch(designs, workload)
    for design, report in zip(designs, reports):
        expected = reference.costing.workload_cost(workload, design)
        assert report.per_query_ms == expected.per_query_ms


# -- write-mix determinism across backends ----------------------------------------


MICRO = ExperimentScale(
    days=56,
    window_days=28,
    queries_per_day=4,
    n_samples=2,
    iterations=1,
    seed=2,
    legacy_tables=2,
    max_transitions=1,
    skip_transitions=1,
)


class TestWriteMixDeterminism:
    def test_htap_trace_deterministic_given_seed(self):
        schema, roles = build_star_schema(
            fact_tables=2,
            fact_rows=100_000,
            fact_attributes=8,
            legacy_tables=2,
            legacy_columns=3,
            seed=5,
        )
        profile = ecommerce_profile(queries_per_day=6, topic_count=2)
        a = TraceGenerator(schema, roles, profile, seed=4).generate(days=30)
        b = TraceGenerator(schema, roles, profile, seed=4).generate(days=30)
        assert [(q.sql, q.timestamp) for q in a] == [(q.sql, q.timestamp) for q in b]

    def test_htap_costing_identical_across_backends(self):
        """The same HTAP window prices identically on serial, thread, and
        process backends (the PR-5 bit-identity contract extends to
        writes)."""

        def fingerprint(backend):
            context = ExperimentContext(MICRO)
            adapter = context.columnar_adapter(backend)
            windows = context.trace_windows("HTAP")
            window = windows[-1]
            assert any(
                adapter.profile(q.sql).is_write for q in window
            ), "HTAP window must contain writes"
            nominal = ColumnarNominalDesigner(adapter)
            candidates = nominal.generate_candidates(window)
            evaluation = evaluate_candidates(adapter, window, candidates)
            design = nominal.design(window)
            report = adapter.costing.workload_cost(window, design)
            return (
                evaluation.base_costs.tolist(),
                evaluation.matrix.tolist(),
                sorted(str(s) for s in design),
                report.per_query_ms,
            )

        reference = fingerprint(SerialBackend())
        with ThreadBackend(jobs=2) as threads:
            assert fingerprint(threads) == reference
        with ProcessBackend(jobs=2) as processes:
            assert fingerprint(processes) == reference


# -- S2 progress anchoring (bugfix 1) ---------------------------------------------


class TestChunkedGeneration:
    def test_s2_chunked_equals_single_call(self, tiny_star):
        schema, roles = tiny_star
        profile = s2_profile(queries_per_day=4, topic_count=2, templates_per_topic=2)
        single = TraceGenerator(schema, roles, profile, seed=6).generate(days=60)
        chunked_gen = TraceGenerator(
            schema, roles, profile, seed=6, total_days=60
        )
        chunked = []
        for chunk in range(6):
            chunked.extend(chunked_gen.generate(days=10, start_day=chunk * 10.0))
        assert [(q.sql, q.timestamp) for q in chunked] == [
            (q.sql, q.timestamp) for q in single
        ]

    def test_progress_anchored_to_overall_period(self, tiny_star):
        """The churn ramp must not restart from ``lo`` on every call: the
        later chunks of a chunked run see late-ramp progress."""
        schema, roles = tiny_star
        profile = s2_profile(queries_per_day=4, topic_count=2, templates_per_topic=2)
        gen = TraceGenerator(schema, roles, profile, seed=6, total_days=60)
        for chunk in range(6):
            gen.generate(days=10, start_day=chunk * 10.0)
        assert gen._progress == pytest.approx(1.0)


# -- archive retention (bugfix 2) -------------------------------------------------


class TestArchiveRetention:
    def test_archive_cap_bounds_every_topic(self, tiny_star):
        schema, roles = tiny_star
        profile = htap_profile(
            queries_per_day=4,
            topic_count=3,
            templates_per_topic=3,
            archive_cap=16,
        )
        gen = TraceGenerator(schema, roles, profile, seed=8)
        gen.generate(days=400)
        assert all(len(archive) <= 16 for archive in gen._archive)

    def test_retention_horizon_bounds_unbounded_cap(self, tiny_star):
        """Even with ``archive_cap=None`` the time horizon prunes: archive
        sizes stop growing linearly with stream length."""
        schema, roles = tiny_star
        profile = htap_profile(
            queries_per_day=4,
            topic_count=3,
            templates_per_topic=3,
            archive_cap=None,
            revival_min_age_days=5.0,
            revival_halflife_days=5.0,
        )
        gen = TraceGenerator(schema, roles, profile, seed=8)
        gen.generate(days=600)
        horizon = 5.0 + 6.0 * 5.0
        for archive in gen._archive:
            assert all(gen._day - died <= horizon for _, died in archive)

    def test_non_binding_cap_is_byte_identical(self, tiny_star):
        """When neither the cap nor the horizon binds, the trace is
        unchanged — pruning draws no randomness."""
        schema, roles = tiny_star
        base = htap_profile(queries_per_day=4, topic_count=2, archive_cap=None)
        capped = htap_profile(queries_per_day=4, topic_count=2, archive_cap=10**6)
        a = TraceGenerator(schema, roles, base, seed=8).generate(days=40)
        b = TraceGenerator(schema, roles, capped, seed=8).generate(days=40)
        assert [(q.sql, q.timestamp) for q in a] == [(q.sql, q.timestamp) for q in b]


# -- bounded monitor logs (bugfix 3) ----------------------------------------------


N_DIMS = 16
STABLE = [f"t.c{i}" for i in range(3)]
DRIFTED = [f"t.c{i}" for i in range(8, 11)]


def _mq(columns, day: float) -> WorkloadQuery:
    return WorkloadQuery(sql=f"SELECT {', '.join(columns)} FROM t", timestamp=day)


def _monitor(max_log_entries=None) -> WorkloadMonitor:
    return WorkloadMonitor(
        WorkloadDistance(N_DIMS),
        threshold=0.005,
        window_days=10,
        measure_every_days=1.0,
        refractory_days=5.0,
        max_log_entries=max_log_entries,
    )


def _long_stream(days: int, start: float = 0.0):
    """Alternating stable/drifted phases — steady readings, many alarms."""
    for d in range(days):
        phase = STABLE if (d // 20) % 2 == 0 else DRIFTED
        yield _mq(phase, start + float(d))


class TestBoundedMonitor:
    def test_logs_bounded_totals_exact(self):
        bounded = _monitor(max_log_entries=32)
        unbounded = _monitor()
        for query in _long_stream(400):
            bounded.observe(query)
            unbounded.observe(query)
        bounded.rebase()
        unbounded.rebase()
        b_alarms = bounded.observe_many(_long_stream(400, start=400.0))
        u_alarms = unbounded.observe_many(_long_stream(400, start=400.0))
        assert len(bounded.readings) <= 32 and len(bounded.alarms) <= 32
        assert [(a.at_day, a.distance) for a in b_alarms] == [
            (a.at_day, a.distance) for a in u_alarms
        ]
        assert bounded.readings_total == len(unbounded.readings)
        assert bounded.alarms_total == len(unbounded.alarms)

    def test_checkpoint_size_bounded_over_long_stream(self):
        bounded = _monitor(max_log_entries=32)
        sizes = []
        stream = list(_long_stream(600))
        bounded.observe_many(stream[:10])
        bounded.rebase()
        for start in (10, 300):
            bounded.observe_many(stream[start : start + 290])
            sizes.append(len(pickle.dumps(bounded.state())))
        # Second half adds ~300 readings; the bounded snapshot must not
        # grow with them (the window itself is already time-bounded).
        assert sizes[1] <= sizes[0] * 1.05

    def test_kill_resume_equivalent_to_uninterrupted(self):
        stream = list(_long_stream(500))
        uninterrupted = _monitor(max_log_entries=32)
        uninterrupted.observe_many(stream[:30])
        uninterrupted.rebase()
        alarms_a = uninterrupted.observe_many(stream[30:])

        killed = _monitor(max_log_entries=32)
        killed.observe_many(stream[:30])
        killed.rebase()
        alarms_b = killed.observe_many(stream[30:250])
        snapshot = pickle.dumps(killed.state())
        resumed = _monitor(max_log_entries=32)
        resumed.restore(pickle.loads(snapshot))
        alarms_b += resumed.observe_many(stream[250:])

        assert [(a.at_day, a.distance) for a in alarms_a] == [
            (a.at_day, a.distance) for a in alarms_b
        ]
        assert resumed.readings_total == uninterrupted.readings_total
        assert resumed.alarms_total == uninterrupted.alarms_total
        assert pickle.dumps(resumed.state()) == pickle.dumps(uninterrupted.state())

    def test_old_checkpoints_restore_without_totals(self):
        monitor = _monitor()
        monitor.observe_many(_long_stream(50))
        monitor.rebase()
        monitor.observe_many(_mq(DRIFTED, 50.0 + d) for d in range(20))
        state = monitor.state()
        del state["readings_total"], state["alarms_total"]
        legacy = _monitor()
        legacy.restore(state)
        assert legacy.readings_total == len(legacy.readings)
        assert legacy.alarms_total == len(legacy.alarms)

    def test_workload_pickle_drops_vector_cache(self):
        # The template-vector cache is keyed by frozensets whose pickle
        # byte order is hash-randomized; persisting it made the byte-
        # equality in test_kill_resume_equivalent_to_uninterrupted flake
        # on ~1/4 of hash seeds.  The cache must not survive pickling.
        workload = Workload([_mq(STABLE, 0.0), _mq(DRIFTED, 1.0)])
        workload.template_vector()
        assert workload._vectors
        clone = pickle.loads(pickle.dumps(workload))
        assert clone._vectors == {}
        assert clone.template_vector() == workload.template_vector()

    def test_serve_config_validates_monitor_log_limit(self):
        assert ServeConfig().monitor_log_limit == 512
        with pytest.raises(ValueError):
            ServeConfig(monitor_log_limit=0)


# -- workload families ------------------------------------------------------------


class TestFamilies:
    @pytest.mark.parametrize(
        "family,name", [(oltp_profile, "OLTP"), (ecommerce_profile, "ECOMMERCE"), (htap_profile, "HTAP")]
    )
    def test_family_traces_parse_and_mix(self, family, name, tiny_star):
        schema, roles = tiny_star
        profile = family(queries_per_day=6, topic_count=2, templates_per_topic=3)
        assert profile.name == name
        trace = TraceGenerator(schema, roles, profile, seed=3).generate(days=30)
        kinds = [type(parse(q.sql)) for q in trace]
        assert SelectStatement in kinds
        assert any(k is not SelectStatement for k in kinds)

    def test_query_distribution_orders_write_shares(self, tiny_star):
        schema, roles = tiny_star

        def write_share(family):
            profile = family(queries_per_day=8, topic_count=2, templates_per_topic=3)
            trace = TraceGenerator(schema, roles, profile, seed=3).generate(days=40)
            writes = sum(
                1 for q in trace if not isinstance(parse(q.sql), SelectStatement)
            )
            return writes / len(trace)

        assert write_share(oltp_profile) > write_share(htap_profile) > 0

    def test_ecommerce_bursts_vary_daily_mix(self, tiny_star):
        schema, roles = tiny_star
        profile = ecommerce_profile(
            queries_per_day=8, topic_count=2, templates_per_topic=3
        )
        trace = TraceGenerator(schema, roles, profile, seed=3).generate(days=60)
        shares = {}
        for q in trace:
            day = int(q.timestamp)
            total, writes = shares.get(day, (0, 0))
            is_write = not isinstance(parse(q.sql), SelectStatement)
            shares[day] = (total + 1, writes + int(is_write))
        daily = [w / n for n, w in shares.values()]
        assert max(daily) - min(daily) > 0.2, "flash/seasonal shaping must show"

    def test_families_reachable_from_experiment_context(self):
        context = ExperimentContext(MICRO)
        for name in ("OLTP", "ECOMMERCE", "HTAP"):
            trace = context.trace(name)
            assert trace, name
