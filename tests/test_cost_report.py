"""Direct tests for the shared workload cost report."""

import pytest

from repro.costing.report import WorkloadCostReport


class TestWorkloadCostReport:
    def test_weighted_average(self):
        report = WorkloadCostReport(per_query_ms=[10.0, 30.0], weights=[3.0, 1.0])
        assert report.average_ms == pytest.approx((30.0 + 30.0) / 4.0)

    def test_max_ignores_weights(self):
        report = WorkloadCostReport(per_query_ms=[10.0, 30.0], weights=[100.0, 0.5])
        assert report.max_ms == 30.0

    def test_total_is_weighted_sum(self):
        report = WorkloadCostReport(per_query_ms=[10.0, 30.0], weights=[2.0, 1.0])
        assert report.total_ms == pytest.approx(50.0)

    def test_empty_report(self):
        report = WorkloadCostReport(per_query_ms=[], weights=[])
        assert report.average_ms == 0.0
        assert report.max_ms == 0.0
        assert report.total_ms == 0.0

    def test_zero_weights(self):
        report = WorkloadCostReport(per_query_ms=[5.0], weights=[0.0])
        assert report.average_ms == 0.0
