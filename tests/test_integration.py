"""End-to-end integration tests across the whole stack (tiny scale)."""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database
from repro.core.cliffguard import CliffGuard
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.engine.executor import ColumnarExecutor
from repro.engine.storage import ColumnarDatabase
from repro.harness.replay import replay
from repro.workload.distance import WorkloadDistance
from repro.workload.sampler import NeighborhoodSampler


class TestColumnarEndToEnd:
    def test_designed_database_answers_real_queries(self, tiny_star, tiny_windows, columnar_adapter):
        """Generate data, design with the nominal designer, deploy, and run
        actual workload queries — results must match the undesigned run."""
        schema, _ = tiny_star
        nominal = ColumnarNominalDesigner(columnar_adapter)
        design = nominal.design(tiny_windows[0])
        assert len(design) > 0

        data = generate_database(schema, seed=1, scale=0.01)
        database = ColumnarDatabase(schema, data)
        database.deploy(design)
        executor = ColumnarExecutor(database)

        checked = 0
        for query in tiny_windows[0].collapsed():
            if query.sql.startswith("SELECT *"):
                continue
            baseline = executor.execute(query.sql)
            designed = executor.execute(query.sql, design)
            assert len(baseline.rows) == len(designed.rows)
            checked += 1
            if checked >= 15:
                break
        assert checked > 0

    def test_cliffguard_end_to_end_columnar(
        self, tiny_star, tiny_trace, tiny_windows, columnar_adapter
    ):
        schema, _ = tiny_star
        window = tiny_windows[1]
        distance = WorkloadDistance(schema.total_columns)
        sampler = NeighborhoodSampler(
            distance,
            schema,
            pool=[q for q in tiny_trace if q.timestamp < window.span_days[0]],
            seed=1,
            min_query_set=4,
            max_query_set=8,
        )
        nominal = ColumnarNominalDesigner(columnar_adapter)
        robust = CliffGuard(
            nominal, columnar_adapter, sampler, gamma=0.004, n_samples=4, max_iterations=2
        )
        design = robust.design(window)
        test = tiny_windows[2]
        robust_cost = columnar_adapter.workload_cost(test, design).average_ms
        empty_cost = columnar_adapter.workload_cost(
            test, columnar_adapter.empty_design()
        ).average_ms
        assert robust_cost < empty_cost

    def test_cliffguard_end_to_end_rowstore(
        self, tiny_star, tiny_trace, tiny_windows, rowstore_adapter
    ):
        """CliffGuard is engine-agnostic: the identical wrapper must drive
        the row-store advisor (the paper's DBMS-X result)."""
        schema, _ = tiny_star
        window = tiny_windows[1]
        distance = WorkloadDistance(schema.total_columns)
        sampler = NeighborhoodSampler(
            distance,
            schema,
            pool=[q for q in tiny_trace if q.timestamp < window.span_days[0]],
            seed=1,
            min_query_set=4,
            max_query_set=8,
        )
        nominal = RowstoreNominalDesigner(rowstore_adapter)
        robust = CliffGuard(
            nominal, rowstore_adapter, sampler, gamma=0.004, n_samples=4, max_iterations=2
        )
        design = robust.design(window)
        test = tiny_windows[2]
        robust_cost = rowstore_adapter.workload_cost(test, design).average_ms
        empty_cost = rowstore_adapter.workload_cost(
            test, rowstore_adapter.empty_design()
        ).average_ms
        assert robust_cost < empty_cost


class TestRowstoreReplay:
    def test_replay_on_rowstore_engine(self, rowstore_adapter, tiny_windows):
        nominal = RowstoreNominalDesigner(rowstore_adapter)
        outcome = replay(
            tiny_windows,
            {"ExistingDesigner": nominal},
            rowstore_adapter,
            candidate_source=nominal,
            max_transitions=2,
        )
        run = outcome.run("ExistingDesigner")
        assert run.windows
        assert run.mean_average_ms > 0


class TestExperimentsSmoke:
    """The experiment entry points must run end-to-end at micro scale."""

    @pytest.fixture(scope="class")
    def context(self):
        from repro.harness.experiments import ExperimentContext, ExperimentScale

        scale = ExperimentScale(
            days=84,
            window_days=28,
            queries_per_day=6,
            n_samples=3,
            iterations=1,
            legacy_tables=5,
            max_transitions=1,
            skip_transitions=1,
        )
        return ExperimentContext(scale)

    def test_table1(self, context):
        from repro.harness.experiments import run_table1

        rows = run_table1(context)
        assert [r.workload for r in rows] == ["R1", "S1", "S2"]
        for row in rows:
            assert row.minimum <= row.average <= row.maximum

    def test_fig5(self, context):
        from repro.harness.experiments import run_fig5

        curves = run_fig5(context, window_sizes=(14, 28))
        assert set(curves) == {14, 28}
        for points in curves.values():
            assert points
            assert all(0.0 <= frac <= 1.0 for _, frac in points)

    def test_designer_comparison_runs(self, context):
        from repro.harness.experiments import run_designer_comparison

        outcome = run_designer_comparison(
            context, "R1", which=["NoDesign", "ExistingDesigner", "CliffGuard"]
        )
        assert outcome.run("NoDesign").mean_average_ms > 0
        assert (
            outcome.run("ExistingDesigner").mean_average_ms
            < outcome.run("NoDesign").mean_average_ms
        )
