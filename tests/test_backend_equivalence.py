"""Bit-identity of the execution backends (the tentpole guarantee).

The same run must produce byte-for-byte identical designs, cost
trajectories, and instrumentation counters on the serial, thread, and
process backends at any worker count.  Wall-clock fields
(``design_seconds``, ``eval_seconds``) are the only permitted difference.
"""

import pytest

from repro.designers import registry
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    run_designer_comparison,
    run_gamma_sweep,
)
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend

MICRO = ExperimentScale(
    days=84,
    window_days=28,
    queries_per_day=6,
    n_samples=3,
    iterations=1,
    seed=2,
    legacy_tables=5,
    max_transitions=1,
    skip_transitions=1,
)

WHICH = ["NoDesign", "ExistingDesigner", "CliffGuard"]


def _cliffguard_design(backend):
    """One CliffGuard design call on a fresh stack over ``backend``.

    Everything is rebuilt per call (context, adapter, service, sampler) so
    each backend starts from a cold cache and the counters are comparable.
    """
    context = ExperimentContext(MICRO)
    adapter = context.columnar_adapter(backend)
    nominal = ColumnarNominalDesigner(adapter)
    gamma = context.default_gamma("R1")
    designer, sampler = registry.get(
        "CliffGuard",
        adapter,
        nominal,
        gamma,
        make_sampler=context.sampler,
        n_samples=MICRO.n_samples,
        max_iterations=MICRO.iterations,
    )
    windows = context.trace_windows("R1")
    window = windows[-2]
    sampler.set_pool(
        [q for q in context.trace("R1") if q.timestamp < window.span_days[0]]
    )
    design = designer.design(window)
    report = designer.last_report
    stats = adapter.costing.stats
    return {
        "fingerprint": sorted(str(s) for s in design),
        "price_bytes": adapter.design_price(design),
        "worst_case_history": report.worst_case_history,
        "alpha_history": report.alpha_history,
        "report_counters": (
            report.iterations,
            report.accepted_moves,
            report.designer_calls,
            report.query_cost_calls,
            report.raw_cost_model_calls,
            report.cache_hits,
        ),
        "service_counters": (
            stats.query_requests,
            stats.query_hits,
            stats.raw_model_calls,
            stats.workload_requests,
            stats.workload_hits,
            stats.dedup_saved,
            stats.evictions,
        ),
        "backend_name": report.backend,
    }


class TestNeighborhoodEvaluation:
    def test_backends_bit_identical_at_any_worker_count(self):
        reference = _cliffguard_design(SerialBackend())
        assert reference["backend_name"] == "serial"
        variants = [
            ThreadBackend(jobs=2),
            ProcessBackend(jobs=1),
            ProcessBackend(jobs=2),
            ProcessBackend(jobs=4),
        ]
        for backend in variants:
            with backend:
                result = _cliffguard_design(backend)
            assert result["fingerprint"] == reference["fingerprint"], backend
            assert result["price_bytes"] == reference["price_bytes"], backend
            assert (
                result["worst_case_history"] == reference["worst_case_history"]
            ), backend
            assert result["alpha_history"] == reference["alpha_history"], backend
            assert (
                result["report_counters"] == reference["report_counters"]
            ), backend
            assert (
                result["service_counters"] == reference["service_counters"]
            ), backend
            assert result["backend_name"] == backend.name

    def test_backend_path_matches_legacy_inline_path(self):
        # backend=None takes the pre-backend inline loop; values must agree.
        legacy = _cliffguard_design(None)
        serial = _cliffguard_design(SerialBackend())
        assert legacy["fingerprint"] == serial["fingerprint"]
        assert legacy["worst_case_history"] == serial["worst_case_history"]
        assert legacy["report_counters"] == serial["report_counters"]
        assert legacy["service_counters"] == serial["service_counters"]
        assert legacy["backend_name"] == "serial"


class TestExperimentFanOut:
    def test_gamma_sweep_identical_across_backends(self):
        context = ExperimentContext(MICRO)
        base = context.default_gamma("R1")
        gammas = [0.0, base]
        legacy = run_gamma_sweep(context, "R1", gammas=gammas)
        serial = run_gamma_sweep(context, "R1", gammas=gammas, backend=SerialBackend())
        with ProcessBackend(jobs=2) as pool:
            process = run_gamma_sweep(context, "R1", gammas=gammas, backend=pool)
        assert serial == process
        # The legacy inline loop shares one adapter across Γs; the cache
        # returns exact floats, so even it agrees bit-for-bit.
        assert legacy == serial

    def test_designer_comparison_identical_across_backends(self):
        context = ExperimentContext(MICRO)
        serial = run_designer_comparison(
            context, "R1", which=WHICH, backend=SerialBackend()
        )
        with ProcessBackend(jobs=2) as pool:
            process = run_designer_comparison(context, "R1", which=WHICH, backend=pool)
        assert set(serial.runs) == set(process.runs) == set(WHICH)
        assert serial.evaluated_query_counts == process.evaluated_query_counts
        for name in WHICH:
            a, b = serial.run(name), process.run(name)
            assert len(a.windows) == len(b.windows)
            for wa, wb in zip(a.windows, b.windows):
                assert wa.window_index == wb.window_index
                assert wa.average_ms == wb.average_ms
                assert wa.max_ms == wb.max_ms
                assert wa.design_price_bytes == wb.design_price_bytes
                assert wa.structure_count == wb.structure_count
                assert wa.query_cost_calls == wb.query_cost_calls
                assert wa.raw_cost_model_calls == wb.raw_cost_model_calls

    def test_designer_comparison_task_path_matches_legacy_values(self):
        # The legacy path shares one adapter across designers (warm cache),
        # the task path isolates each designer — *values* must still agree;
        # only cache-hit instrumentation may differ.
        context = ExperimentContext(MICRO)
        legacy = run_designer_comparison(context, "R1", which=WHICH)
        serial = run_designer_comparison(
            context, "R1", which=WHICH, backend=SerialBackend()
        )
        for name in WHICH:
            a, b = legacy.run(name), serial.run(name)
            assert a.mean_average_ms == pytest.approx(b.mean_average_ms)
            assert a.mean_max_ms == pytest.approx(b.mean_max_ms)
            for wa, wb in zip(a.windows, b.windows):
                assert wa.average_ms == wb.average_ms
                assert wa.max_ms == wb.max_ms
                assert wa.design_price_bytes == wb.design_price_bytes
