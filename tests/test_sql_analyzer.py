"""Unit tests for clause-wise column extraction and templates."""

import pytest

from repro.sql.analyzer import CLAUSES, QueryTemplate, analyze, extract_template
from repro.sql.parser import parse


class TestAnalyze:
    def test_clause_separation(self):
        template = extract_template(
            "SELECT t.a, SUM(t.m) FROM t WHERE t.b = 1 GROUP BY t.a ORDER BY t.c"
        )
        assert template.select == frozenset({"t.a", "t.m"})
        assert template.where == frozenset({"t.b"})
        assert template.group_by == frozenset({"t.a"})
        assert template.order_by == frozenset({"t.c"})

    def test_union_combines_all_clauses(self):
        template = extract_template(
            "SELECT t.a FROM t WHERE t.b = 1 GROUP BY t.c ORDER BY t.d"
        )
        assert template.union == frozenset({"t.a", "t.b", "t.c", "t.d"})

    def test_join_keys_count_as_where(self):
        template = extract_template("SELECT t.a FROM t JOIN u ON t.k = u.k")
        assert "t.k" in template.where
        assert "u.k" in template.where

    def test_count_star_contributes_nothing(self):
        template = extract_template("SELECT COUNT(*) FROM t")
        assert template.is_empty

    def test_literals_do_not_matter(self):
        first = extract_template("SELECT t.a FROM t WHERE t.b = 1")
        second = extract_template("SELECT t.a FROM t WHERE t.b = 999")
        assert first == second

    def test_different_columns_differ(self):
        first = extract_template("SELECT t.a FROM t WHERE t.b = 1")
        second = extract_template("SELECT t.a FROM t WHERE t.c = 1")
        assert first != second

    def test_select_star_is_empty_column_set(self):
        # ``SELECT *`` has no explicit columns; the analyzer reports none
        # (the paper drops such queries from the vectors).
        template = analyze(parse("SELECT * FROM t"))
        assert template.select == frozenset()


class TestTemplateApi:
    def test_clause_accessor(self):
        template = extract_template("SELECT t.a FROM t WHERE t.b = 1")
        assert template.clause("select") == frozenset({"t.a"})
        assert template.clause("where") == frozenset({"t.b"})

    def test_clause_accessor_rejects_unknown(self):
        template = extract_template("SELECT t.a FROM t")
        with pytest.raises(KeyError):
            template.clause("having")

    def test_restricted_union(self):
        template = extract_template(
            "SELECT t.a FROM t WHERE t.b = 1 GROUP BY t.c"
        )
        assert template.restricted(("select", "where")) == frozenset({"t.a", "t.b"})

    def test_clauses_constant_matches_fields(self):
        template = extract_template("SELECT t.a FROM t")
        for name in CLAUSES:
            template.clause(name)  # must not raise

    def test_templates_are_hashable_dict_keys(self):
        a = extract_template("SELECT t.a FROM t")
        b = extract_template("SELECT t.a FROM t WHERE t.b = 2")
        mapping = {a: 1, b: 2}
        assert mapping[extract_template("SELECT t.a FROM t")] == 1

    def test_extract_template_cached(self):
        sql = "SELECT t.a FROM t WHERE t.b = 7"
        assert extract_template(sql) is extract_template(sql)
