"""Edge-case tests for both engines' cost models."""

import pytest

from repro.engine.design import PhysicalDesign
from repro.engine.optimizer import ColumnarCostModel
from repro.engine.projection import Projection, SortColumn
from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.optimizer import RowstoreCostModel


@pytest.fixture
def columnar(sales_schema) -> ColumnarCostModel:
    return ColumnarCostModel(sales_schema)


@pytest.fixture
def rowstore(sales_schema) -> RowstoreCostModel:
    return RowstoreCostModel(sales_schema)


class TestColumnarEdges:
    def test_order_by_matching_sort_is_free(self, columnar):
        sql = "SELECT sales.day, sales.amount FROM sales ORDER BY sales.day"
        sorted_proj = Projection("sales", ("day", "amount"), (SortColumn("day"),))
        unsorted_proj = Projection("sales", ("amount", "day"), (SortColumn("amount"),))
        profile = columnar.profile(sql)
        free = columnar.projection_cost(profile, sorted_proj)
        paid = columnar.projection_cost(profile, unsorted_proj)
        assert free < paid

    def test_eq_after_range_breaks_prefix(self, columnar):
        # Sort key (day, store): a range on day consumes the prefix, so the
        # equality on store cannot further narrow the scanned range.
        sql = (
            "SELECT sales.amount FROM sales "
            "WHERE sales.day BETWEEN 0 AND 3 AND sales.store = 1"
        )
        range_first = Projection(
            "sales", ("day", "store", "amount"), (SortColumn("day"), SortColumn("store"))
        )
        eq_first = Projection(
            "sales", ("store", "day", "amount"), (SortColumn("store"), SortColumn("day"))
        )
        profile = columnar.profile(sql)
        assert columnar.projection_cost(profile, eq_first) < columnar.projection_cost(
            profile, range_first
        )

    def test_projection_cost_cached(self, columnar):
        sql = "SELECT sales.amount FROM sales WHERE sales.store = 1"
        projection = Projection("sales", ("store", "amount"), (SortColumn("store"),))
        profile = columnar.profile(sql)
        first = columnar.projection_cost(profile, projection)
        assert (profile.sql, projection) in columnar._projection_costs
        assert columnar.projection_cost(profile, projection) == first

    def test_wrong_table_projection_returns_none(self, columnar):
        sql = "SELECT sales.amount FROM sales"
        projection = Projection("stores", ("region",), (SortColumn("region"),))
        assert columnar.projection_cost(columnar.profile(sql), projection) is None

    def test_dimension_benefits_from_dim_projection(self, columnar):
        sql = (
            "SELECT SUM(sales.amount) FROM sales "
            "JOIN stores ON sales.store = stores.store_id WHERE stores.region = 2"
        )
        dim_proj = Projection(
            "stores", ("region", "store_id"), (SortColumn("region"),)
        )
        with_dim = columnar.query_cost(sql, PhysicalDesign.of(dim_proj))
        without = columnar.query_cost(sql, PhysicalDesign.empty())
        assert with_dim <= without


class TestRowstoreEdges:
    def test_range_column_terminates_seek(self, rowstore):
        index = Index("sales", ("day", "store"))
        sql = (
            "SELECT sales.amount FROM sales "
            "WHERE sales.day BETWEEN 0 AND 10 AND sales.store = 1"
        )
        profile = rowstore.profile(sql)
        depth, used_range = index.seek_prefix(
            set(profile.anchor.eq_map), set(profile.anchor.range_map)
        )
        assert (depth, used_range) == (1, True)

    def test_index_on_unfiltered_column_useless(self, rowstore):
        sql = "SELECT sales.amount FROM sales WHERE sales.store = 1"
        useless = RowstoreDesign.of(Index("sales", ("day", "store")))
        # 'day' leads the index but carries no predicate → no seek.
        assert rowstore.query_cost(sql, useless) == pytest.approx(
            rowstore.query_cost(sql, RowstoreDesign.empty())
        )

    def test_structure_cost_cached(self, rowstore):
        sql = "SELECT sales.amount FROM sales WHERE sales.store = 1"
        index = Index("sales", ("store",))
        profile = rowstore.profile(sql)
        first = rowstore.structure_cost(profile, index)
        assert (profile.sql, index) in rowstore._structure_costs
        assert rowstore.structure_cost(profile, index) == first

    def test_scan_cost_scales_with_row_width(self, sales_schema):
        # The row store reads whole rows: the same query costs more than on
        # the columnar engine, which reads only the needed columns.
        from repro.engine.optimizer import ColumnarCostModel

        row_model = RowstoreCostModel(sales_schema)
        col_model = ColumnarCostModel(sales_schema)
        sql = "SELECT sales.amount FROM sales"
        assert row_model.query_cost(sql, RowstoreDesign.empty()) > col_model.query_cost(
            sql, PhysicalDesign.empty()
        )
