"""Tests for Γ-neighborhood sampling (Algorithm 4) and query mutation."""

import warnings

import numpy as np
import pytest

from repro.sql.analyzer import extract_template
from repro.workload.distance import WorkloadDistance
from repro.workload.query import WorkloadQuery
from repro.workload.sampler import ColumnAffinity, NeighborhoodSampler, mutate_query
from repro.workload.windows import split_windows
from repro.workload.workload import Workload


@pytest.fixture
def setup(tiny_star, tiny_trace):
    schema, _roles = tiny_star
    distance = WorkloadDistance(schema.total_columns)
    windows = split_windows(tiny_trace, 28)
    base = windows[1]
    pool = [q for q in tiny_trace if q.timestamp < base.span_days[0]]
    sampler = NeighborhoodSampler(distance, schema, pool=pool, seed=7)
    return schema, distance, base, sampler


class TestMutation:
    def test_mutation_changes_template(self, tiny_star, tiny_trace):
        schema, _ = tiny_star
        rng = np.random.default_rng(0)
        changed = 0
        for query in tiny_trace[:30]:
            mutated = mutate_query(query.sql, schema, rng)
            if mutated is not None and mutated != query.sql:
                changed += 1
                # still parseable, same anchor table
                template = extract_template(mutated)
                assert not template.is_empty
        assert changed > 20

    def test_mutation_of_unknown_table_returns_none(self, tiny_star):
        schema, _ = tiny_star
        rng = np.random.default_rng(0)
        assert mutate_query("SELECT x FROM nowhere", schema, rng) is None

    def test_mutation_of_unparseable_returns_none(self, tiny_star):
        schema, _ = tiny_star
        rng = np.random.default_rng(0)
        assert mutate_query("NOT SQL AT ALL", schema, rng) is None

    def test_affinity_biases_replacements(self, tiny_star, tiny_trace):
        schema, _ = tiny_star
        affinity = ColumnAffinity()
        affinity.observe(tiny_trace)
        # Weights must be a probability distribution favouring co-occurring
        # columns.
        fact = schema.tables[sorted(t for t in schema.tables if t.startswith("fact"))[0]]
        options = fact.column_names[:6]
        weights = affinity.replacement_weights(fact.name, options[:2], options)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()


class TestSampler:
    def test_sample_count(self, setup):
        _, _, base, sampler = setup
        samples = sampler.sample(base, gamma=0.01, count=5)
        assert len(samples) == 5

    def test_samples_within_gamma(self, setup):
        _, distance, base, sampler = setup
        gamma = 0.01
        for sample in sampler.sample(base, gamma, 8):
            achieved = distance(base, sample)
            assert achieved <= gamma * 1.3  # floor rounding tolerance

    def test_sample_at_hits_target_distance(self, setup):
        _, distance, base, sampler = setup
        alpha = 0.005
        moved = sampler.sample_at(base, alpha)
        achieved = distance(base, moved)
        assert achieved == pytest.approx(alpha, rel=0.35)

    def test_zero_alpha_returns_copy(self, setup):
        _, _, base, sampler = setup
        moved = sampler.sample_at(base, 0.0)
        assert len(moved) == len(base)

    def test_negative_gamma_rejected(self, setup):
        _, _, base, sampler = setup
        with pytest.raises(ValueError):
            sampler.sample(base, -1.0, 3)

    def test_perturbation_preserves_base_queries(self, setup):
        _, _, base, sampler = setup
        moved = sampler.sample_at(base, 0.005)
        base_sqls = {q.sql for q in base}
        moved_sqls = {q.sql for q in moved}
        assert base_sqls <= moved_sqls

    def test_added_queries_are_template_disjoint_from_base(self, setup):
        _, distance, base, sampler = setup
        moved = sampler.sample_at(base, 0.005)
        base_keys = distance.template_keys(base)
        base_sqls = {q.sql for q in base}
        from repro.workload.workload import template_key

        for query in moved:
            if query.sql in base_sqls:
                continue
            key = template_key(query.template, distance.clauses)
            assert key not in base_keys

    def test_deterministic_given_seed(self, setup):
        schema, distance, base, sampler = setup
        other = NeighborhoodSampler(
            distance, schema, pool=list(sampler.pool), seed=7
        )
        first = sampler.sample(base, 0.004, 3)
        second = other.sample(base, 0.004, 3)
        assert [len(w) for w in first] == [len(w) for w in second]

    def test_set_pool_resets_affinity(self, setup):
        schema, distance, base, sampler = setup
        sampler.set_pool([])
        assert sampler.pool == []
        # sampling still works (falls back to mutations)
        moved = sampler.sample_at(base, 0.004)
        assert len(moved) >= len(base)

    def test_invalid_query_set_bounds(self, setup):
        schema, distance, base, _ = setup
        with pytest.raises(ValueError):
            NeighborhoodSampler(distance, schema, min_query_set=5, max_query_set=2)


class TestReplacementWeightsEdgeCases:
    def test_empty_options_return_empty_weights(self):
        """Regression: an empty ``options`` list normalized a zero-sum
        empty array (0/0 → NaN with a RuntimeWarning).  Single-column
        tables offer no replacement, so the empty case is routine."""
        affinity = ColumnAffinity()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning fails
            weights = affinity.replacement_weights("t", ["a"], [])
        assert weights.shape == (0,)
        assert weights.dtype == np.float64
        assert not np.isnan(weights).any()

    def test_observed_affinity_still_normalizes(self, tiny_star, tiny_trace):
        schema, _ = tiny_star
        affinity = ColumnAffinity()
        affinity.observe(tiny_trace)
        table = sorted(t for t in schema.tables if t.startswith("fact"))[0]
        options = schema.tables[table].column_names[:4]
        weights = affinity.replacement_weights(table, options[:1], options)
        assert weights.sum() == pytest.approx(1.0)
