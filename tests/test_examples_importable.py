"""Every example script must at least import cleanly.

Full example runs take minutes (they replay months of workload); the test
suite guards the cheap invariant that the scripts stay in sync with the
library's public API.  Each script guards its work behind
``if __name__ == "__main__"``, so importing executes no heavy code.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} must define main()"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the library ships at least three examples"
