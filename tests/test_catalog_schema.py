"""Unit tests for the schema catalog."""

import pytest

from repro.catalog.schema import Column, Schema, SchemaError, Table
from repro.catalog.types import ColumnType


class TestColumn:
    def test_rejects_nonpositive_ndv(self):
        with pytest.raises(SchemaError):
            Column("a", ColumnType.INT, ndv=0)

    def test_rejects_negative_skew(self):
        with pytest.raises(SchemaError):
            Column("a", ColumnType.INT, skew=-1.0)


class TestTable:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", ColumnType.INT), Column("a", ColumnType.INT)])

    def test_rejects_nonpositive_rows(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", ColumnType.INT)], row_count=0)

    def test_column_lookup(self):
        table = Table("t", [Column("a", ColumnType.INT)])
        assert table.column("a").name == "a"
        assert table.has_column("a")
        assert not table.has_column("b")
        with pytest.raises(SchemaError):
            table.column("b")

    def test_row_bytes_sums_widths(self):
        table = Table(
            "t",
            [
                Column("a", ColumnType.INT),  # 8
                Column("b", ColumnType.BOOL),  # 1
                Column("c", ColumnType.STRING),  # 16
            ],
        )
        assert table.row_bytes == 25


class TestSchema:
    def make(self) -> Schema:
        schema = Schema()
        schema.add_table(Table("t", [Column("a", ColumnType.INT), Column("shared", ColumnType.INT)]))
        schema.add_table(Table("u", [Column("b", ColumnType.INT), Column("shared", ColumnType.INT)]))
        return schema

    def test_duplicate_table_rejected(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.add_table(Table("t", [Column("x", ColumnType.INT)]))

    def test_resolve_qualified(self):
        schema = self.make()
        table, column = schema.resolve("t.a")
        assert (table.name, column.name) == ("t", "a")

    def test_resolve_bare_unique(self):
        schema = self.make()
        table, column = schema.resolve("b")
        assert (table.name, column.name) == ("u", "b")

    def test_resolve_bare_ambiguous(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.resolve("shared")

    def test_resolve_unknown(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.resolve("nope")
        with pytest.raises(SchemaError):
            schema.resolve("t.nope")

    def test_total_columns(self):
        assert self.make().total_columns == 4

    def test_all_qualified_columns_deterministic(self):
        schema = self.make()
        names = schema.all_qualified_columns()
        assert names == sorted(names, key=lambda n: n.split(".")[0])
        assert "t.a" in names and "u.b" in names


class TestColumnType:
    def test_every_type_has_width_and_dtype(self):
        for ct in ColumnType:
            assert ct.byte_width > 0
            assert ct.numpy_dtype is not None

    def test_bool_not_orderable(self):
        assert not ColumnType.BOOL.is_orderable
        assert ColumnType.DATE.is_orderable
