"""Unit tests for vectorized predicate evaluation."""

import numpy as np
import pytest

from repro.engine.expressions import (
    ExpressionError,
    evaluate_conjunction,
    evaluate_predicate,
)
from repro.engine.storage import ColumnData
from repro.sql.parser import parse


def preds(where: str):
    return parse(f"SELECT a FROM t WHERE {where}").where


@pytest.fixture
def columns():
    return {
        "a": ColumnData(np.array([1, 2, 3, 4, 5], dtype=np.int64)),
        "f": ColumnData(np.array([1.0, 2.0, np.nan, 4.0, 5.0])),
        "s": ColumnData(
            np.array([0, 1, 2, 0, 1], dtype=np.int64),
            dictionary=np.array(["apple", "banana", "cherry"], dtype=object),
        ),
    }


class TestComparisons:
    def test_equality(self, columns):
        mask = evaluate_predicate(preds("a = 3")[0], columns)
        assert mask.tolist() == [False, False, True, False, False]

    @pytest.mark.parametrize(
        "where,expected",
        [
            ("a != 3", [True, True, False, True, True]),
            ("a < 3", [True, True, False, False, False]),
            ("a <= 3", [True, True, True, False, False]),
            ("a > 3", [False, False, False, True, True]),
            ("a >= 3", [False, False, True, True, True]),
        ],
    )
    def test_all_operators(self, columns, where, expected):
        assert evaluate_predicate(preds(where)[0], columns).tolist() == expected

    def test_comparison_with_null_matches_nothing(self, columns):
        mask = evaluate_predicate(preds("a = NULL")[0], columns)
        assert not mask.any()


class TestOtherPredicates:
    def test_between_inclusive(self, columns):
        mask = evaluate_predicate(preds("a BETWEEN 2 AND 4")[0], columns)
        assert mask.tolist() == [False, True, True, True, False]

    def test_in_list(self, columns):
        mask = evaluate_predicate(preds("a IN (1, 5)")[0], columns)
        assert mask.tolist() == [True, False, False, False, True]

    def test_like_on_dictionary_column(self, columns):
        mask = evaluate_predicate(preds("s LIKE 'a%'")[0], columns)
        assert mask.tolist() == [True, False, False, True, False]

    def test_like_underscore(self, columns):
        mask = evaluate_predicate(preds("s LIKE 'b_nana'")[0], columns)
        assert mask.tolist() == [False, True, False, False, True]

    def test_is_null_on_float(self, columns):
        mask = evaluate_predicate(preds("f IS NULL")[0], columns)
        assert mask.tolist() == [False, False, True, False, False]

    def test_is_not_null(self, columns):
        mask = evaluate_predicate(preds("f IS NOT NULL")[0], columns)
        assert mask.tolist() == [True, True, False, True, True]

    def test_string_equality_via_dictionary(self, columns):
        mask = evaluate_predicate(preds("s = 'banana'")[0], columns)
        assert mask.tolist() == [False, True, False, False, True]

    def test_string_equality_unknown_value(self, columns):
        mask = evaluate_predicate(preds("s = 'durian'")[0], columns)
        assert not mask.any()


class TestConjunction:
    def test_empty_conjunction_is_all_true(self, columns):
        mask = evaluate_conjunction((), columns, 5)
        assert mask.all() and mask.shape == (5,)

    def test_and_combines(self, columns):
        mask = evaluate_conjunction(preds("a > 1 AND a < 5"), columns, 5)
        assert mask.tolist() == [False, True, True, True, False]

    def test_missing_column_raises(self, columns):
        with pytest.raises(ExpressionError):
            evaluate_predicate(preds("zzz = 1")[0], columns)
