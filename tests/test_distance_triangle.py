"""Empirical check of the paper's requirement R4 (triangle property).

The paper asserts δ_euclidean satisfies the triangle property.  As written
(Equation 9 is a quadratic form, not a norm), that is an *empirical* claim,
and DESIGN.md documents it as such.  This test quantifies it: over a fixed
seeded population of workload triples, the triangle inequality must hold
for the overwhelming majority — and symmetry/identity must hold exactly.
"""

import numpy as np

from repro.workload.distance import WorkloadDistance
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

N_COLUMNS = 20
COLUMNS = [f"t.c{i}" for i in range(N_COLUMNS)]


def random_workload(rng: np.random.Generator) -> Workload:
    queries = []
    for _ in range(rng.integers(1, 7)):
        width = int(rng.integers(1, 5))
        columns = rng.choice(COLUMNS, size=width, replace=False)
        frequency = float(rng.uniform(0.5, 8.0))
        queries.append(
            WorkloadQuery(
                sql=f"SELECT {', '.join(sorted(columns))} FROM t",
                frequency=frequency,
            )
        )
    return Workload(queries)


def test_triangle_property_holds_empirically():
    rng = np.random.default_rng(2015)
    metric = WorkloadDistance(N_COLUMNS)
    triples = 300
    violations = 0
    worst_ratio = 0.0
    for _ in range(triples):
        a, b, c = (random_workload(rng) for _ in range(3))
        d_ac = metric(a, c)
        d_ab = metric(a, b)
        d_bc = metric(b, c)
        slack = d_ab + d_bc
        if d_ac > slack * (1 + 1e-9):
            violations += 1
            if slack > 0:
                worst_ratio = max(worst_ratio, d_ac / slack)
    # The paper treats R4 as satisfied; empirically the quadratic form
    # honours it for the overwhelming majority of triples, and violations
    # (when they occur) are mild.
    assert violations / triples < 0.10, f"{violations}/{triples} violations"
    if violations:
        assert worst_ratio < 2.0


def test_symmetry_and_identity_hold_exactly():
    rng = np.random.default_rng(7)
    metric = WorkloadDistance(N_COLUMNS)
    for _ in range(50):
        a, b = random_workload(rng), random_workload(rng)
        assert metric(a, a) == 0.0
        assert abs(metric(a, b) - metric(b, a)) < 1e-15
