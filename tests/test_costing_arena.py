"""Workload-arena tests: compile-once reuse, delta re-costing, memoized
fingerprints.

The arena refactor's contract is pure code motion: ``kernel.compile``
must equal ``kernel.bind(kernel.compile_queries(...))`` bit-for-bit,
delta re-costing must equal a full re-reduction bit-for-bit, and the
service-level arena cache must never change a single cached float —
only how often the compile work is paid.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costing.kernel import kernel_for
from repro.costing.service import (
    KERNEL_MIN_BATCH,
    CostEvaluationService,
    _IdentityMemo,
    design_fingerprint,
    workload_fingerprint,
)
from repro.designers.base import ColumnarAdapter, RowstoreAdapter, SamplesAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.obs import get_metrics
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.design import StratifiedSample
from repro.samples.optimizer import SamplesCostModel
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

SUBSTRATES = ("columnar", "rowstore", "samples")


@lru_cache(maxsize=1)
def _environment():
    schema, roles = build_star_schema(
        fact_tables=2,
        fact_rows=200_000,
        fact_attributes=10,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = r1_profile(queries_per_day=6, topic_count=2, templates_per_topic=3)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=30)
    sqls = list(dict.fromkeys(q.sql for q in trace))[:14]
    assert len(sqls) >= 6
    return schema, sqls


@lru_cache(maxsize=None)
def _substrate(name: str):
    schema, sqls = _environment()
    if name == "columnar":
        model = ColumnarCostModel(schema)
        nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    elif name == "rowstore":
        model = RowstoreCostModel(schema)
        nominal = RowstoreNominalDesigner(RowstoreAdapter(model))
    else:
        model = SamplesCostModel(schema)
        nominal = SamplesNominalDesigner(SamplesAdapter(model))
    candidates = nominal.generate_candidates(Workload.from_sql(sqls))[:10]
    profiles = [model.profile(sql) for sql in sqls]
    if name == "samples" and not candidates:
        # Star-join traces yield no sample-answerable queries, so the
        # nominal pool is empty; synthesize samples on the touched tables
        # — bind/delta identity must hold for unanswerable structures too.
        used = list(dict.fromkeys(t.table for p in profiles for t in p.tables))
        candidates = [
            StratifiedSample(
                table=table,
                strata_columns=(schema.table(table).column_names[0],),
                fraction=fraction,
            )
            for table in used[:5]
            for fraction in (0.01, 0.1)
        ][:10]
    assert candidates
    return model, candidates, profiles


def _adapter(model):
    service = CostEvaluationService(model)
    if isinstance(model, ColumnarCostModel):
        return ColumnarAdapter(model, costing=service)
    if isinstance(model, RowstoreCostModel):
        return RowstoreAdapter(model, costing=service)
    return SamplesAdapter(model, costing=service)


def _workload(sqls: list[str]) -> Workload:
    return Workload(
        WorkloadQuery(sql=sql, frequency=float(i + 1)) for i, sql in enumerate(sqls)
    )


# -- compile == bind(compile_queries) ---------------------------------------------


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    mask=st.integers(0, 1023),
    q_mask=st.integers(1, (1 << 14) - 1),
)
def test_bind_arena_equals_direct_compile(substrate, mask, q_mask):
    """The arena split is pure code motion: identical arrays, identical
    floats."""
    model, candidates, profiles = _substrate(substrate)
    kernel = kernel_for(model)
    chosen = [p for i, p in enumerate(profiles) if q_mask & (1 << i)]
    structures = [c for i, c in enumerate(candidates) if mask & (1 << i)]

    direct = kernel.compile(chosen, structures)
    arena = kernel.compile_queries(chosen)
    bound = kernel.bind(arena, structures)

    np.testing.assert_array_equal(direct.base_costs(), bound.base_costs())
    np.testing.assert_array_equal(direct.design_costs(), bound.design_costs())
    # A second bind against the same arena must not have been perturbed
    # by the first (arenas are read-only to bind).
    rebound = kernel.bind(arena, structures)
    np.testing.assert_array_equal(bound.design_costs(), rebound.design_costs())


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    mask=st.integers(1, 1023),
    q_mask=st.integers(1, (1 << 14) - 1),
    changed=st.integers(0, 9),
)
def test_delta_recost_bit_identical_on_add_and_remove(
    substrate, mask, q_mask, changed
):
    """Re-pricing only the affected queries equals a full re-reduction —
    tolerance zero — when one structure enters or leaves the member set."""
    model, candidates, profiles = _substrate(substrate)
    kernel = kernel_for(model)
    chosen = [p for i, p in enumerate(profiles) if q_mask & (1 << i)]
    batch = kernel.bind(kernel.compile_queries(chosen), candidates)
    changed %= len(candidates)
    members = [i for i in range(len(candidates)) if mask & (1 << i)]
    prev = batch.design_costs(members)

    if changed in members:
        flipped = [m for m in members if m != changed]
    else:
        flipped = sorted(members + [changed])
    full = batch.design_costs(flipped)
    delta = batch.delta_design_costs(flipped, changed, prev)
    np.testing.assert_array_equal(full, delta)
    # prev must not be mutated in place — callers reuse it.
    np.testing.assert_array_equal(prev, batch.design_costs(members))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(substrate=st.sampled_from(SUBSTRATES), changed=st.integers(0, 9))
def test_affected_queries_is_conservative(substrate, changed):
    """Every query whose cost actually changes is flagged as affected."""
    model, candidates, profiles = _substrate(substrate)
    kernel = kernel_for(model)
    batch = kernel.bind(kernel.compile_queries(profiles), candidates)
    changed %= len(candidates)
    without = batch.design_costs([i for i in range(len(candidates)) if i != changed])
    with_all = batch.design_costs(list(range(len(candidates))))
    affected = batch.affected_queries(changed)
    differs = without != with_all
    assert not np.any(differs & ~affected)


# -- the service-level arena cache -------------------------------------------------


def test_arena_reused_across_designs():
    """Two designs over one workload pay exactly one compile."""
    model, candidates, _ = _substrate("columnar")
    adapter = _adapter(model)
    service = adapter.costing
    _, sqls = _environment()
    workload = _workload(sqls)
    assert len(sqls) >= KERNEL_MIN_BATCH

    first = adapter.workload_cost(workload, adapter.make_design(candidates[:3]))
    second = adapter.workload_cost(workload, adapter.make_design(candidates[3:6]))
    assert service.arena_stats.builds == 1
    assert service.arena_stats.hits >= 1
    assert service.cached_arenas == 1

    # Bit-identity against a fresh (cold-arena) service.
    fresh = _adapter(model)
    assert first.per_query_ms == fresh.workload_cost(
        workload, fresh.make_design(candidates[:3])
    ).per_query_ms
    assert second.per_query_ms == fresh.workload_cost(
        workload, fresh.make_design(candidates[3:6])
    ).per_query_ms


def test_prepare_workload_prewarms_and_gates():
    model, _, _ = _substrate("columnar")
    adapter = _adapter(model)
    service = adapter.costing
    _, sqls = _environment()
    workload = _workload(sqls)

    assert service.prepare_workload(workload) is True
    assert service.arena_stats.builds == 1
    # The costing pass that follows reuses the pre-warmed arena.
    adapter.workload_cost(workload, adapter.make_design([]))
    assert service.arena_stats.builds == 1
    assert service.arena_stats.hits >= 1
    # Below the kernel batch threshold nothing is compiled.
    assert service.prepare_workload(_workload(sqls[:2])) is False


def test_invalidate_design_drops_arenas():
    model, candidates, _ = _substrate("columnar")
    adapter = _adapter(model)
    service = adapter.costing
    _, sqls = _environment()
    design = adapter.make_design(candidates[:2])
    adapter.workload_cost(_workload(sqls), design)
    assert service.cached_arenas == 1
    service.invalidate_design(design)
    assert service.cached_arenas == 0
    assert service.arena_stats.invalidations == 1


def test_clear_drops_arenas():
    model, candidates, _ = _substrate("columnar")
    adapter = _adapter(model)
    service = adapter.costing
    _, sqls = _environment()
    adapter.workload_cost(_workload(sqls), adapter.make_design(candidates[:2]))
    assert service.cached_arenas == 1
    service.clear()
    assert service.cached_arenas == 0
    assert service.arena_stats.invalidations == 1


def test_arena_lru_bound_evicts_oldest():
    model, candidates, _ = _substrate("columnar")
    adapter = _adapter(model)
    service = adapter.costing
    service.max_arenas = 2
    _, sqls = _environment()
    slices = [sqls[0:8], sqls[3:11], sqls[6:14]]  # each >= KERNEL_MIN_BATCH
    for i, chunk in enumerate(slices):
        # A fresh design per slice keeps every query a cache miss, so
        # each call takes the kernel path and builds its slice's arena.
        adapter.workload_cost(_workload(chunk), adapter.make_design(candidates[i : i + 1]))
    assert service.cached_arenas == 2
    assert service.arena_stats.evictions == 1
    # The evicted (oldest) workload rebuilds; the resident ones hit.
    builds = service.arena_stats.builds
    adapter.workload_cost(_workload(slices[0]), adapter.make_design(candidates[3:4]))
    assert service.arena_stats.builds == builds + 1


def test_arenas_excluded_from_state_export():
    """Arenas are derived state: export/import round-trips without them,
    and a restored service rebuilds on first use with identical floats."""
    model, candidates, _ = _substrate("columnar")
    adapter = _adapter(model)
    service = adapter.costing
    _, sqls = _environment()
    workload = _workload(sqls)
    design = adapter.make_design(candidates[:3])
    report = adapter.workload_cost(workload, design)
    state = service.export_state()
    assert "arena" not in str(sorted(state.keys()))

    resumed = _adapter(model)
    resumed.costing.import_state(state)
    assert resumed.costing.cached_arenas == 0
    # Cached entries serve without an arena; a new workload rebuilds.
    assert (
        resumed.workload_cost(workload, resumed.make_design(candidates[:3])).per_query_ms
        == report.per_query_ms
    )


def test_workload_costs_batch_delta_path_matches_full():
    """The neighborhood shape — consecutive designs differing by one
    structure — takes the delta path and stays bit-identical."""
    model, candidates, _ = _substrate("columnar")
    _, sqls = _environment()
    workload = _workload(sqls)
    designs_structures = [
        candidates[:4],
        candidates[:5],           # one added
        candidates[1:5],          # one removed
    ]

    adapter = _adapter(model)
    designs = [adapter.make_design(s) for s in designs_structures]
    reports = adapter.workload_costs_batch(designs, workload)
    assert adapter.costing.arena_stats.delta_recosts >= 1

    # A fresh service, one workload_cost per design: no delta anywhere.
    fresh = _adapter(model)
    for report, structures in zip(reports, designs_structures):
        single = fresh.workload_cost(workload, fresh.make_design(structures))
        assert report.per_query_ms == single.per_query_ms


# -- fingerprint memoization -------------------------------------------------------


def test_workload_fingerprint_memoized_and_digest_stable():
    _, sqls = _environment()
    workload = _workload(sqls)
    # Digest is spelled identically whether the container or its query
    # list is hashed — checkpoint keys from older runs stay valid.
    assert workload_fingerprint(workload) == workload_fingerprint(list(workload))
    # Identity memo: same object, no re-hash (observable via the memo).
    memo = _IdentityMemo("test.unused")
    memo.put(workload, "sentinel")
    assert memo.get(workload) == "sentinel"
    assert memo.get(list(workload)) is None


def test_design_fingerprint_memoized_by_identity():
    model, candidates, _ = _substrate("columnar")
    adapter = _adapter(model)
    a = adapter.make_design(candidates[:2])
    b = adapter.make_design(candidates[:2])
    # Content-identical designs agree; distinct objects both memoize.
    assert design_fingerprint(a) == design_fingerprint(b)
    assert design_fingerprint(a) == design_fingerprint(a)


def test_identity_memo_bound_and_eviction_counter():
    before = get_metrics().counter("costing.fingerprint_memo_evictions").value
    memo = _IdentityMemo("costing.fingerprint_memo_evictions", max_entries=2)
    keep = [object() for _ in range(3)]  # hold refs: ids must stay live
    for i, obj in enumerate(keep):
        memo.put(obj, f"v{i}")
    assert len(memo) == 2
    after = get_metrics().counter("costing.fingerprint_memo_evictions").value
    assert after == before + 1
    assert memo.get(keep[0]) is None  # evicted (oldest)
    assert memo.get(keep[2]) == "v2"


def test_identity_memo_rejects_recycled_ids():
    memo = _IdentityMemo("test.unused")
    obj = ["x"]
    memo.put(obj, "v")
    # A different object that happens to share the id slot must miss;
    # simulate by checking the stored-object identity guard directly.
    impostor = ["x"]
    memo._entries[id(impostor)] = (obj, "stale")
    assert memo.get(impostor) is None
