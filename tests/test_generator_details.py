"""Detailed tests for template specs and workload roles."""

import numpy as np
import pytest

from repro.sql.analyzer import extract_template
from repro.sql.parser import parse
from repro.workload.generator import (
    StarRoles,
    TemplateSpec,
    WorkloadRoles,
    _mutate_spec,
    _random_spec,
    restrict_roles,
)


@pytest.fixture
def roles(tiny_star) -> StarRoles:
    _, workload_roles = tiny_star
    return workload_roles.facts[0]


class TestWorkloadRoles:
    def test_primary_delegation(self, tiny_star):
        _, workload_roles = tiny_star
        assert workload_roles.fact == workload_roles.facts[0].fact
        assert workload_roles.measures == workload_roles.facts[0].measures

    def test_single_fact_wrapping(self, roles, tiny_star):
        schema, _ = tiny_star
        from repro.workload.generator import TraceGenerator, r1_profile

        generator = TraceGenerator(
            schema, roles, r1_profile(queries_per_day=3, topic_count=2, templates_per_topic=2),
            seed=1,
        )
        trace = generator.generate(days=5)
        assert trace  # StarRoles input is auto-wrapped into WorkloadRoles


class TestTemplateSpec:
    def test_instantiate_parses(self, roles, tiny_star):
        schema, _ = tiny_star
        rng = np.random.default_rng(0)
        for _ in range(20):
            spec = _random_spec(roles, rng)
            sql = spec.instantiate(roles, schema, rng)
            parse(sql)  # must not raise

    def test_same_spec_same_template(self, roles, tiny_star):
        schema, _ = tiny_star
        rng = np.random.default_rng(1)
        spec = _random_spec(roles, rng)
        first = spec.instantiate(roles, schema, rng)
        second = spec.instantiate(roles, schema, rng)
        # Literals differ between emissions, templates do not.
        assert extract_template(first) == extract_template(second)

    def test_mutation_changes_spec(self, roles):
        rng = np.random.default_rng(2)
        spec = _random_spec(roles, rng)
        changed = sum(
            1 for _ in range(20) if _mutate_spec(spec, roles, rng) != spec
        )
        assert changed >= 15

    def test_mutation_stays_within_roles(self, roles):
        rng = np.random.default_rng(3)
        spec = _random_spec(roles, rng)
        for _ in range(30):
            spec = _mutate_spec(spec, roles, rng)
        assert set(spec.eq_filters) <= set(roles.eq_columns)
        assert set(spec.range_filters) <= set(roles.range_columns)
        assert set(spec.measures) <= set(roles.measures)

    def test_mutation_keeps_order_by_consistent(self, roles):
        rng = np.random.default_rng(4)
        for _ in range(50):
            spec = _random_spec(roles, rng)
            mutated = _mutate_spec(spec, roles, rng)
            if mutated.order_by is not None:
                assert mutated.order_by in mutated.group_by


class TestRestrictRoles:
    def test_deterministic_given_rng_state(self, roles):
        first = restrict_roles(roles, np.random.default_rng(9))
        second = restrict_roles(roles, np.random.default_rng(9))
        assert first.eq_columns == second.eq_columns
        assert first.measures == second.measures

    def test_pools_never_exceed_source(self, roles):
        narrowed = restrict_roles(
            roles,
            np.random.default_rng(1),
            eq_pool=100,
            range_pool=100,
            measure_pool=100,
        )
        assert len(narrowed.eq_columns) == len(roles.eq_columns)
        assert len(narrowed.range_columns) == len(roles.range_columns)
