"""Unit tests for projections and the physical-design container."""

import pytest

from repro.catalog.schema import Column, Schema, Table
from repro.catalog.types import ColumnType
from repro.engine.design import PhysicalDesign
from repro.engine.projection import (
    Projection,
    SortColumn,
    super_projection,
    super_projections,
)


@pytest.fixture
def table() -> Table:
    return Table(
        "t",
        [Column(c, ColumnType.INT, ndv=100) for c in ("a", "b", "c", "d")],
        row_count=1_000_000,
    )


class TestProjection:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Projection("t", (), ())

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            Projection("t", ("a", "a"), ())

    def test_sort_columns_must_be_stored(self):
        with pytest.raises(ValueError):
            Projection("t", ("a",), (SortColumn("b"),))

    def test_covers_is_subset_check(self):
        projection = Projection("t", ("a", "b"), (SortColumn("a"),))
        assert projection.covers({"a"})
        assert projection.covers({"a", "b"})
        assert not projection.covers({"a", "c"})

    def test_size_scales_with_rows_and_width(self, table):
        narrow = Projection("t", ("a",), (SortColumn("a"),))
        wide = Projection("t", ("a", "b", "c"), (SortColumn("a"),))
        assert wide.size_bytes(table) > narrow.size_bytes(table)
        assert narrow.size_bytes(table, row_count=10) < narrow.size_bytes(table)

    def test_sorted_columns_compress_better(self, table):
        sorted_proj = Projection("t", ("a", "b"), (SortColumn("a"), SortColumn("b")))
        unsorted_proj = Projection("t", ("a", "b"), (SortColumn("a"),))
        assert sorted_proj.size_bytes(table) < unsorted_proj.size_bytes(table)

    def test_super_projection_contains_all_columns(self, table):
        projection = super_projection(table)
        assert projection.is_super
        assert projection.column_set == {"a", "b", "c", "d"}

    def test_to_sql_mentions_order(self):
        projection = Projection("t", ("a", "b"), (SortColumn("b", ascending=False),))
        ddl = projection.to_sql()
        assert "CREATE PROJECTION" in ddl
        assert "ORDER BY b DESC" in ddl

    def test_hashable_and_equal_by_value(self):
        first = Projection("t", ("a", "b"), (SortColumn("a"),))
        second = Projection("t", ("a", "b"), (SortColumn("a"),))
        assert first == second
        assert len({first, second}) == 1


class TestPhysicalDesign:
    def test_empty_design(self, table):
        design = PhysicalDesign.empty()
        assert len(design) == 0
        schema = Schema()
        schema.add_table(table)
        assert design.price(schema) == 0

    def test_super_projection_rejected(self, table):
        with pytest.raises(ValueError):
            PhysicalDesign.of(super_projection(table))

    def test_price_sums_projection_sizes(self, table):
        schema = Schema()
        schema.add_table(table)
        p1 = Projection("t", ("a",), (SortColumn("a"),))
        p2 = Projection("t", ("b", "c"), (SortColumn("b"),))
        design = PhysicalDesign.of(p1, p2)
        assert design.price(schema) == p1.size_bytes(table) + p2.size_bytes(table)

    def test_for_table_filters_and_sorts(self, table):
        p1 = Projection("t", ("a",), (SortColumn("a"),))
        p2 = Projection("u", ("x",), (SortColumn("x"),))
        design = PhysicalDesign.of(p1, p2)
        assert design.for_table("t") == [p1]
        assert design.for_table("missing") == []

    def test_with_projection_is_persistent(self):
        p1 = Projection("t", ("a",), (SortColumn("a"),))
        base = PhysicalDesign.empty()
        extended = base.with_projection(p1)
        assert len(base) == 0
        assert len(extended) == 1

    def test_iteration_is_deterministic(self):
        projections = [
            Projection("t", (c,), (SortColumn(c),)) for c in ("c", "a", "b")
        ]
        design = PhysicalDesign.of(*projections)
        assert [p.columns[0] for p in design] == ["a", "b", "c"]

    def test_deployment_time_proportional_to_price(self, table):
        schema = Schema()
        schema.add_table(table)
        small = PhysicalDesign.of(Projection("t", ("a",), (SortColumn("a"),)))
        large = PhysicalDesign.of(
            Projection("t", ("a", "b", "c", "d"), (SortColumn("a"),))
        )
        assert large.deployment_seconds(schema) > small.deployment_seconds(schema)

    def test_super_projections_helper(self, table):
        schema = Schema()
        schema.add_table(table)
        supers = super_projections(schema)
        assert set(supers) == {"t"}
        assert supers["t"].is_super
