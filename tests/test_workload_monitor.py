"""Tests for the streaming drift monitor."""

import pytest

from repro.workload.distance import WorkloadDistance
from repro.workload.monitor import WorkloadMonitor
from repro.workload.query import WorkloadQuery


def q(columns: list[str], day: float) -> WorkloadQuery:
    return WorkloadQuery(sql=f"SELECT {', '.join(columns)} FROM t", timestamp=day)


N = 16
STABLE = [f"t.c{i}" for i in range(3)]
DRIFTED = [f"t.c{i}" for i in range(8, 11)]


@pytest.fixture
def monitor() -> WorkloadMonitor:
    return WorkloadMonitor(
        WorkloadDistance(N),
        threshold=0.005,
        window_days=10,
        measure_every_days=1.0,
        refractory_days=5.0,
    )


class TestValidation:
    def test_parameter_validation(self):
        distance = WorkloadDistance(N)
        with pytest.raises(ValueError):
            WorkloadMonitor(distance, threshold=-1)
        with pytest.raises(ValueError):
            WorkloadMonitor(distance, threshold=0.1, window_days=0)

    def test_out_of_order_rejected(self, monitor):
        monitor.observe(q(STABLE, 5.0))
        with pytest.raises(ValueError):
            monitor.observe(q(STABLE, 4.0))


class TestSlidingWindow:
    def test_old_queries_evicted(self, monitor):
        monitor.observe(q(STABLE, 0.0))
        monitor.observe(q(STABLE, 20.0))
        window = monitor.current_window
        assert len(window) == 1
        assert window.queries[0].timestamp == 20.0


class TestDriftDetection:
    def test_no_alarms_without_reference(self, monitor):
        alarms = monitor.observe_many(q(STABLE, float(d)) for d in range(20))
        assert alarms == []
        assert monitor.readings == []

    def test_stable_workload_never_alarms(self, monitor):
        monitor.observe_many(q(STABLE, float(d) / 2) for d in range(20))
        monitor.rebase()
        alarms = monitor.observe_many(
            q(STABLE, 10.0 + float(d)) for d in range(20)
        )
        assert alarms == []
        assert all(r.distance <= monitor.threshold for r in monitor.readings)

    def test_drift_raises_alarm(self, monitor):
        monitor.observe_many(q(STABLE, float(d) / 2) for d in range(20))
        monitor.rebase()
        alarms = monitor.observe_many(
            q(DRIFTED, 10.0 + float(d)) for d in range(20)
        )
        assert alarms
        assert alarms[0].distance > monitor.threshold

    def test_refractory_limits_alarm_storm(self, monitor):
        monitor.observe_many(q(STABLE, float(d) / 2) for d in range(20))
        monitor.rebase()
        alarms = monitor.observe_many(
            q(DRIFTED, 10.0 + float(d)) for d in range(30)
        )
        # 30 days of sustained drift with a 5-day refractory → ≤ ~7 alarms.
        assert 1 <= len(alarms) <= 7

    def test_rebase_clears_alarm_state(self, monitor):
        monitor.observe_many(q(STABLE, float(d) / 2) for d in range(20))
        monitor.rebase()
        monitor.observe_many(q(DRIFTED, 10.0 + float(d)) for d in range(15))
        assert monitor.alarms
        count = len(monitor.alarms)
        monitor.rebase()  # accept the drifted workload as the new normal
        monitor.observe_many(q(DRIFTED, 25.0 + float(d)) for d in range(10))
        assert len(monitor.alarms) == count  # no further alarms

    def test_measurement_cadence(self, monitor):
        monitor.observe_many(q(STABLE, float(d) / 2) for d in range(20))
        monitor.rebase()
        monitor.observe_many(
            q(STABLE, 10.0 + d * 0.1) for d in range(100)
        )  # 10 days of dense traffic
        # Measurements happen ~daily, not per query.
        assert len(monitor.readings) <= 12

    def test_rebase_starts_a_fresh_measurement_cadence(self, monitor):
        """Regression: ``rebase`` cleared the alarm refractory anchor but
        not the measurement cadence anchor, so the first observations of
        the new epoch were silently skipped until ``measure_every_days``
        had elapsed since the *previous* epoch's last reading."""
        monitor.observe_many(q(STABLE, float(d) / 2) for d in range(20))
        monitor.rebase()
        monitor.observe(q(STABLE, 10.0))  # measures, anchors the cadence
        before = len(monitor.readings)
        monitor.rebase()
        # Well inside the old cadence window — a fresh epoch must still
        # measure immediately.
        monitor.observe(q(STABLE, 10.2))
        assert len(monitor.readings) == before + 1
        assert monitor.readings[-1].at_day == 10.2
