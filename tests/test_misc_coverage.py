"""Additional coverage: design rendering, move variants, window options,
distance internals, and reporting formats."""

import pytest

from repro.core.move import move_workload
from repro.engine.design import PhysicalDesign
from repro.engine.projection import Projection, SortColumn
from repro.harness.reporting import format_series, format_table
from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView
from repro.samples.design import SampleDesign, StratifiedSample
from repro.workload.distance import WorkloadDistance
from repro.workload.query import WorkloadQuery
from repro.workload.windows import split_windows
from repro.workload.workload import Workload


def q(sql, freq=1.0, day=0.0):
    return WorkloadQuery(sql=sql, frequency=freq, timestamp=day)


class TestDesignRendering:
    def test_physical_design_describe(self):
        design = PhysicalDesign.of(
            Projection("t", ("a", "b"), (SortColumn("a"),)),
            Projection("t", ("c",), (SortColumn("c"),)),
        )
        text = design.describe()
        assert text.count("proj(") == 2
        assert PhysicalDesign.empty().describe() == "(empty design)"

    def test_rowstore_design_describe(self):
        design = RowstoreDesign.of(
            Index("t", ("a",)), MaterializedView("t", ("a",), ("b",))
        )
        text = design.describe()
        assert "idx(" in text and "mv(" in text

    def test_sample_design_describe(self):
        design = SampleDesign.of(StratifiedSample("t", ("a",), 0.1))
        assert "sample(" in design.describe()
        assert SampleDesign.empty().describe() == "(empty design)"

    def test_index_and_view_ddl(self):
        assert Index("t", ("a", "b")).to_sql() == "CREATE INDEX idx_t_a_b ON t (a, b)"
        ddl = MaterializedView("t", ("a",), ("m",)).to_sql()
        assert ddl.startswith("CREATE MATERIALIZED VIEW")
        assert "GROUP BY a" in ddl


class TestMoveVariants:
    BASE = Workload([q("SELECT t.a FROM t", 3)])
    NEIGHBOR = Workload([q("SELECT t.a FROM t", 3), q("SELECT t.b FROM t", 2)])
    COSTS = {"SELECT t.a FROM t": 10.0, "SELECT t.b FROM t": 500.0}

    def test_keep_base_false_drops_anchor(self):
        moved = move_workload(
            self.BASE, [self.NEIGHBOR], self.COSTS.get, alpha=1.0, keep_base=False
        )
        weights = {x.sql: x.frequency for x in moved}
        anchored = move_workload(
            self.BASE, [self.NEIGHBOR], self.COSTS.get, alpha=1.0, keep_base=True
        )
        weights_anchored = {x.sql: x.frequency for x in anchored}
        # Without the anchor, the base query's weight is purely its
        # neighbor contribution — strictly less than with the anchor.
        assert weights["SELECT t.a FROM t"] < weights_anchored["SELECT t.a FROM t"]

    def test_no_neighbors_returns_base_weights(self):
        moved = move_workload(self.BASE, [], self.COSTS.get, alpha=1.0)
        assert {x.sql for x in moved} == {"SELECT t.a FROM t"}
        assert moved.total_weight == pytest.approx(1.0)  # normalized


class TestWindowOptions:
    def test_explicit_start_day(self):
        queries = [q("SELECT t.a FROM t", day=d) for d in (10.0, 16.0)]
        aligned = split_windows(queries, 7, start_day=7.0)
        assert [len(w) for w in aligned] == [1, 1]

    def test_queries_before_start_are_dropped(self):
        queries = [q("SELECT t.a FROM t", day=d) for d in (1.0, 10.0)]
        windows = split_windows(queries, 7, start_day=7.0)
        assert sum(len(w) for w in windows) == 1


class TestDistanceInternals:
    def test_template_keys_respects_clause_spec(self):
        workload = Workload([q("SELECT t.a FROM t WHERE t.b = 1")])
        union_metric = WorkloadDistance(8, ("select", "where"))
        keys = union_metric.template_keys(workload)
        assert keys == {frozenset({"t.a", "t.b"})}

    def test_too_many_columns_rejected(self):
        metric = WorkloadDistance(1)
        first = Workload([q("SELECT t.a FROM t")])
        second = Workload([q("SELECT t.b FROM t")])
        with pytest.raises(ValueError):
            metric(first, second)

    def test_cross_term_symmetry(self):
        metric = WorkloadDistance(8)
        a = Workload([q("SELECT t.a FROM t")])
        b = Workload([q("SELECT t.b FROM t")])
        assert metric.cross_term(a, b) == pytest.approx(metric.cross_term(b, a))


class TestReportingFormats:
    def test_large_and_small_numbers(self):
        text = format_table(["v"], [[1234567.0], [0.00012], [3.5]])
        assert "1,234,567" in text
        assert "0.00012" in text
        assert "3.50" in text

    def test_series_labels_align(self):
        text = format_series("x", "y", [("aa", 1.0), ("b", 2.0)])
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].index("|") == lines[1].index("|")

    def test_table_without_title(self):
        text = format_table(["h"], [[1]])
        assert text.splitlines()[0].startswith("h")
