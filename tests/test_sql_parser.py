"""Unit tests for the SQL parser."""

import pytest

from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ColumnRef,
    ComparisonPredicate,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
)
from repro.sql.parser import ParseError, parse


class TestSelectList:
    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.select_star
        assert stmt.table == "t"

    def test_plain_columns(self):
        stmt = parse("SELECT a, t.b FROM t")
        assert stmt.select[0].expr == ColumnRef("a")
        assert stmt.select[1].expr == ColumnRef("b", "t")

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(x), AVG(t.y) FROM t")
        aggs = [item.expr for item in stmt.select]
        assert aggs[0] == Aggregate("COUNT", None)
        assert aggs[1] == Aggregate("SUM", ColumnRef("x"))
        assert aggs[2] == Aggregate("AVG", ColumnRef("y", "t"))

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.select[0].expr == Aggregate("COUNT", ColumnRef("a"), distinct=True)

    def test_alias(self):
        stmt = parse("SELECT SUM(x) AS total FROM t")
        assert stmt.select[0].alias == "total"

    def test_sum_star_is_invalid(self):
        with pytest.raises(ParseError):
            parse("SELECT SUM(*) FROM t")


class TestWhere:
    def test_comparison(self):
        stmt = parse("SELECT a FROM t WHERE a = 5")
        pred = stmt.where[0]
        assert isinstance(pred, ComparisonPredicate)
        assert pred.op == "="
        assert pred.value.value == 5

    def test_float_and_string_literals(self):
        stmt = parse("SELECT a FROM t WHERE x > 1.5 AND y = 'abc'")
        assert stmt.where[0].value.value == 1.5
        assert stmt.where[1].value.value == "abc"

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        pred = stmt.where[0]
        assert isinstance(pred, BetweenPredicate)
        assert (pred.low.value, pred.high.value) == (1, 10)

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        pred = stmt.where[0]
        assert isinstance(pred, InPredicate)
        assert [v.value for v in pred.values] == [1, 2, 3]

    def test_like(self):
        stmt = parse("SELECT a FROM t WHERE name LIKE 'foo%'")
        assert isinstance(stmt.where[0], LikePredicate)
        assert stmt.where[0].pattern == "foo%"

    def test_is_null_and_is_not_null(self):
        stmt = parse("SELECT a FROM t WHERE x IS NULL AND y IS NOT NULL")
        assert isinstance(stmt.where[0], IsNullPredicate)
        assert not stmt.where[0].negated
        assert stmt.where[1].negated

    def test_conjunction_order_preserved(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert [p.column.name for p in stmt.where] == ["a", "b", "c"]

    def test_or_is_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE a = 1 OR b = 2")


class TestClauses:
    def test_group_by(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a, b")
        assert [c.name for c in stmt.group_by] == ["a", "b"]

    def test_order_by_directions(self):
        stmt = parse("SELECT a FROM t ORDER BY a ASC, b DESC, c")
        assert [(o.column.name, o.ascending) for o in stmt.order_by] == [
            ("a", True),
            ("b", False),
            ("c", True),
        ]

    def test_limit(self):
        stmt = parse("SELECT a FROM t LIMIT 100")
        assert stmt.limit == 100

    def test_join(self):
        stmt = parse("SELECT a FROM t JOIN u ON t.k = u.k WHERE u.x = 1")
        assert stmt.joins[0].table == "u"
        assert stmt.joins[0].left == ColumnRef("k", "t")
        assert stmt.joins[0].right == ColumnRef("k", "u")

    def test_inner_join_keyword(self):
        stmt = parse("SELECT a FROM t INNER JOIN u ON t.k = u.k")
        assert stmt.joins[0].table == "u"

    def test_non_equi_join_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t JOIN u ON t.k < u.k")

    def test_multiple_joins(self):
        stmt = parse("SELECT a FROM t JOIN u ON t.k = u.k JOIN v ON t.j = v.j")
        assert [j.table for j in stmt.joins] == ["u", "v"]


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT FROM t",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t trailing garbage",
            "FROM t SELECT a",
        ],
    )
    def test_malformed_statements_raise(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as exc:
            parse("SELECT a FROM t WHERE = 5")
        assert "position" in str(exc.value)
