"""Unit tests for columnar storage and projection materialization."""

import numpy as np
import pytest

from repro.engine.design import PhysicalDesign
from repro.engine.projection import Projection, SortColumn
from repro.engine.storage import ColumnarDatabase, ColumnarTable


@pytest.fixture
def database(sales_schema, sales_data) -> ColumnarDatabase:
    return ColumnarDatabase(sales_schema, sales_data)


class TestColumnarTable:
    def test_missing_column_rejected(self, sales_schema, sales_data):
        del sales_data["sales"]["amount"]
        with pytest.raises(ValueError):
            ColumnarTable(sales_schema.table("sales"), sales_data["sales"])

    def test_ragged_columns_rejected(self, sales_schema, sales_data):
        sales_data["sales"]["amount"] = sales_data["sales"]["amount"][:-1]
        with pytest.raises(ValueError):
            ColumnarTable(sales_schema.table("sales"), sales_data["sales"])

    def test_super_projection_always_present(self, database):
        table = database.table("sales")
        assert table.super_projection.projection.is_super
        assert table.super_projection.row_count == table.row_count

    def test_materialized_projection_is_sorted(self, database):
        table = database.table("sales")
        projection = Projection("sales", ("product", "amount"), (SortColumn("product"),))
        materialized = table.materialize(projection)
        keys = materialized.sort_key_values()
        assert np.all(np.diff(keys) >= 0)

    def test_materialization_preserves_multiset(self, database, sales_data):
        table = database.table("sales")
        projection = Projection("sales", ("store", "day"), (SortColumn("day"),))
        materialized = table.materialize(projection)
        assert np.array_equal(
            np.sort(materialized.columns["store"].values),
            np.sort(sales_data["sales"]["store"]),
        )

    def test_descending_sort(self, database):
        table = database.table("sales")
        projection = Projection(
            "sales", ("day", "store"), (SortColumn("day", ascending=False),)
        )
        materialized = table.materialize(projection)
        values = materialized.columns["day"].values
        assert np.all(np.diff(values) <= 0)

    def test_lexicographic_secondary_sort(self, database):
        table = database.table("sales")
        projection = Projection(
            "sales", ("store", "day"), (SortColumn("store"), SortColumn("day"))
        )
        materialized = table.materialize(projection)
        stores = materialized.columns["store"].values
        days = materialized.columns["day"].values
        same_store = stores[1:] == stores[:-1]
        assert np.all(np.diff(days)[same_store] >= 0)

    def test_materialize_is_idempotent(self, database):
        table = database.table("sales")
        projection = Projection("sales", ("store",), (SortColumn("store"),))
        first = table.materialize(projection)
        second = table.materialize(projection)
        assert first is second

    def test_wrong_anchor_rejected(self, database):
        table = database.table("sales")
        projection = Projection("stores", ("region",), (SortColumn("region"),))
        with pytest.raises(ValueError):
            table.materialize(projection)

    def test_string_columns_get_dictionary(self, database):
        data = database.table("sales").columns["channel"]
        assert data.dictionary is not None
        decoded = data.decode()
        assert decoded[0].startswith("val_")

    def test_encode_literal_round_trips_strings(self, database):
        data = database.table("sales").columns["channel"]
        code = data.encode_literal("val_2")
        assert data.dictionary[code] == "val_2"
        assert data.encode_literal("no_such_value") == -1
        assert data.encode_literal(3) == 3  # non-strings pass through


class TestColumnarDatabase:
    def test_requires_data_for_every_table(self, sales_schema, sales_data):
        del sales_data["stores"]
        with pytest.raises(ValueError):
            ColumnarDatabase(sales_schema, sales_data)

    def test_deploy_counts_new_materializations(self, database):
        design = PhysicalDesign.of(
            Projection("sales", ("store",), (SortColumn("store"),)),
            Projection("stores", ("region",), (SortColumn("region"),)),
        )
        assert database.deploy(design) == 2
        assert database.deploy(design) == 0  # idempotent

    def test_measured_statistics_row_counts(self, database):
        stats = database.measured_statistics()
        assert stats["sales"].row_count == 5000
        assert stats["stores"].row_count == 50
