"""Formatter tests, including the hypothesis round-trip property."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ColumnRef,
    ComparisonPredicate,
    InPredicate,
    IsNullPredicate,
    Join,
    LikePredicate,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
)
from repro.sql.formatter import format_statement
from repro.sql.parser import parse

# -- strategies to generate random statements in the subset -----------------------

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "ASC", "DESC",
        "LIMIT", "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "IS", "NULL",
        "JOIN", "INNER", "ON", "AS", "COUNT", "SUM", "AVG", "MIN", "MAX",
        "DISTINCT", "TRUE", "FALSE",
    }
)

column_refs = st.builds(
    ColumnRef,
    name=identifiers,
    table=st.one_of(st.none(), identifiers),
)

literals = st.one_of(
    st.integers(-1000, 1000).map(Literal),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
        max_size=8,
    ).map(Literal),
    st.just(Literal(None)),
)

comparisons = st.builds(
    ComparisonPredicate,
    column=column_refs,
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=literals,
)
betweens = st.builds(
    BetweenPredicate,
    column=column_refs,
    low=st.integers(-100, 100).map(Literal),
    high=st.integers(-100, 100).map(Literal),
)
in_lists = st.builds(
    InPredicate,
    column=column_refs,
    values=st.lists(st.integers(-50, 50).map(Literal), min_size=1, max_size=4).map(tuple),
)
likes = st.builds(
    LikePredicate,
    column=column_refs,
    pattern=st.from_regex(r"[a-z%_]{1,6}", fullmatch=True),
)
nulls = st.builds(IsNullPredicate, column=column_refs, negated=st.booleans())
predicates = st.one_of(comparisons, betweens, in_lists, likes, nulls)

aggregates = st.one_of(
    st.just(Aggregate("COUNT", None)),
    st.builds(
        Aggregate,
        func=st.sampled_from(["SUM", "AVG", "MIN", "MAX", "COUNT"]),
        column=column_refs,
        distinct=st.booleans(),
    ),
)
select_items = st.builds(
    SelectItem,
    expr=st.one_of(column_refs, aggregates),
    alias=st.one_of(st.none(), identifiers),
)

statements = st.builds(
    SelectStatement,
    select=st.lists(select_items, min_size=1, max_size=4).map(tuple),
    table=identifiers,
    joins=st.lists(
        st.builds(Join, table=identifiers, left=column_refs, right=column_refs),
        max_size=2,
    ).map(tuple),
    where=st.lists(predicates, max_size=3).map(tuple),
    group_by=st.lists(column_refs, max_size=3).map(tuple),
    order_by=st.lists(
        st.builds(OrderItem, column=column_refs, ascending=st.booleans()),
        max_size=2,
    ).map(tuple),
    limit=st.one_of(st.none(), st.integers(1, 10_000)),
)


class TestRoundTrip:
    @given(statements)
    @settings(max_examples=200, deadline=None)
    def test_parse_of_format_is_identity(self, stmt):
        assert parse(format_statement(stmt)) == stmt

    def test_known_statement_text(self):
        sql = (
            "SELECT a, SUM(t.b) AS total FROM t JOIN u ON t.k = u.k "
            "WHERE c = 5 AND d BETWEEN 1 AND 2 GROUP BY a "
            "ORDER BY a DESC LIMIT 10"
        )
        assert format_statement(parse(sql)) == sql

    def test_string_escaping_round_trips(self):
        sql = "SELECT a FROM t WHERE name = 'it''s'"
        stmt = parse(sql)
        assert parse(format_statement(stmt)) == stmt
