"""Tests for the stratified-sample (AQP) design space."""

import pytest

from repro.catalog.statistics import TableStatistics
from repro.core.cliffguard import CliffGuard
from repro.designers.base import SamplesAdapter, default_budget_bytes
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.samples.design import SampleDesign, StratifiedSample
from repro.samples.optimizer import SamplesCostModel
from repro.workload.distance import WorkloadDistance
from repro.workload.sampler import NeighborhoodSampler


@pytest.fixture
def model(sales_schema) -> SamplesCostModel:
    """Cost model over benchmark-scale declared statistics: sampling only
    pays off on large tables, and the error cap rightly rejects tiny ones."""
    from repro.catalog.schema import Schema, Table

    big = Schema()
    for table in sales_schema.tables.values():
        big.add_table(
            Table(
                table.name,
                list(table.columns),
                row_count=5_000_000 if table.name == "sales" else table.row_count,
            )
        )
    return SamplesCostModel(big)


class TestStratifiedSample:
    def test_validation(self):
        with pytest.raises(ValueError):
            StratifiedSample("t", (), 0.1)
        with pytest.raises(ValueError):
            StratifiedSample("t", ("a", "a"), 0.1)
        with pytest.raises(ValueError):
            StratifiedSample("t", ("a",), 0.0)
        with pytest.raises(ValueError):
            StratifiedSample("t", ("a",), 1.5)

    def test_sample_rows_and_size(self, sales_schema, model):
        sample = StratifiedSample("sales", ("store",), 0.1)
        stats = model.statistics["sales"]
        assert sample.sample_rows(stats) == 500_000
        table = sales_schema.table("sales")
        assert sample.size_bytes(table, stats) == 500_000 * table.row_bytes

    def test_error_decreases_with_fraction(self, model):
        stats = model.statistics["sales"]
        small = StratifiedSample("sales", ("store",), 0.01)
        large = StratifiedSample("sales", ("store",), 0.2)
        assert large.relative_error(stats) < small.relative_error(stats)

    def test_more_strata_means_more_error(self, model):
        stats = model.statistics["sales"]
        coarse = StratifiedSample("sales", ("store",), 0.1)
        fine = StratifiedSample("sales", ("store", "product"), 0.1)
        assert fine.relative_error(stats) > coarse.relative_error(stats)

    def test_to_sql(self):
        ddl = StratifiedSample("sales", ("store", "day"), 0.05).to_sql()
        assert "STRATIFIED BY (store, day)" in ddl


class TestServiceability:
    def test_answers_matching_aggregate(self, model):
        sample = StratifiedSample("sales", ("store", "day"), 0.3)
        profile = model.profile(
            "SELECT sales.store, SUM(sales.amount) FROM sales "
            "WHERE sales.day < 100 GROUP BY sales.store"
        )
        assert model.answers(profile, sample)

    def test_rejects_uncovered_filter(self, model):
        sample = StratifiedSample("sales", ("store",), 0.2)
        profile = model.profile(
            "SELECT SUM(sales.amount) FROM sales WHERE sales.product = 1"
        )
        assert not model.answers(profile, sample)

    def test_rejects_non_aggregate(self, model):
        sample = StratifiedSample("sales", ("store",), 0.2)
        profile = model.profile("SELECT sales.amount FROM sales WHERE sales.store = 1")
        assert not model.answers(profile, sample)

    def test_rejects_distinct(self, model):
        sample = StratifiedSample("sales", ("store",), 0.2)
        profile = model.profile(
            "SELECT COUNT(DISTINCT sales.amount) FROM sales WHERE sales.store = 1"
        )
        assert not model.answers(profile, sample)

    def test_rejects_excessive_error(self, model):
        # A minuscule fraction over fine strata → error above the cap.
        sample = StratifiedSample("sales", ("store", "product", "day"), 0.001)
        profile = model.profile(
            "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 1 AND sales.product = 2 AND sales.day = 3"
        )
        assert not model.answers(profile, sample)


class TestCosting:
    def test_sample_cheaper_than_exact(self, model):
        sample = StratifiedSample("sales", ("store",), 0.2)
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 1"
        exact = model.query_cost(sql, SampleDesign.empty())
        approx = model.query_cost(sql, SampleDesign.of(sample))
        assert approx < exact

    def test_unusable_sample_is_ignored(self, model):
        sample = StratifiedSample("sales", ("day",), 0.2)
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 1"
        assert model.query_cost(sql, SampleDesign.of(sample)) == pytest.approx(
            model.query_cost(sql, SampleDesign.empty())
        )

    def test_choose_sample(self, model):
        good = StratifiedSample("sales", ("store",), 0.05)
        better = StratifiedSample("sales", ("store",), 0.02)
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 1"
        design = SampleDesign.of(good, better)
        assert model.choose_sample(model.profile(sql), design) == better


class TestSamplesDesigner:
    @pytest.fixture
    def adapter(self, tiny_star):
        schema, _ = tiny_star
        return SamplesAdapter(
            SamplesCostModel(schema), default_budget_bytes(schema, 0.1)
        )

    def test_design_improves_workload(self, adapter, tiny_windows):
        designer = SamplesNominalDesigner(adapter)
        window = tiny_windows[1]
        design = designer.design(window)
        assert len(design) > 0
        assert (
            adapter.workload_cost(window, design).average_ms
            < adapter.workload_cost(window, adapter.empty_design()).average_ms
        )

    def test_design_within_budget(self, adapter, tiny_windows):
        designer = SamplesNominalDesigner(adapter)
        design = designer.design(tiny_windows[1])
        assert adapter.design_price(design) <= adapter.budget_bytes

    def test_cliffguard_drives_samples_engine(
        self, adapter, tiny_star, tiny_trace, tiny_windows
    ):
        """The same CliffGuard wrapper must drive a third engine."""
        schema, _ = tiny_star
        window = tiny_windows[1]
        distance = WorkloadDistance(schema.total_columns)
        sampler = NeighborhoodSampler(
            distance,
            schema,
            pool=[q for q in tiny_trace if q.timestamp < window.span_days[0]],
            seed=5,
            min_query_set=4,
            max_query_set=8,
        )
        nominal = SamplesNominalDesigner(adapter)
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.004, n_samples=3, max_iterations=2
        )
        design = robust.design(window)
        test = tiny_windows[2]
        assert (
            adapter.workload_cost(test, design).average_ms
            < adapter.workload_cost(test, adapter.empty_design()).average_ms
        )
