"""Design-stream reuse tests: candidate-matrix cache, delta neighborhood
evaluation, incremental greedy selection.

The contract is the arena refactor's, one level up: a warm candidate
matrix (or a delta neighborhood fill) must equal the cold rebuild
bit-for-bit — tolerance zero, on all three substrates, for read-only and
mixed read/write workloads, serial or fanned out — and must leave every
**exported** counter and cache exactly as a cold service would.  The
cache is derived state: only :class:`~repro.costing.service.ArenaStats`
(never checkpointed) may see the savings.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from functools import lru_cache

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costing.kernel import affected_union, kernel_for
from repro.costing.service import KERNEL_MIN_BATCH, CostEvaluationService
from repro.designers.base import ColumnarAdapter, RowstoreAdapter, SamplesAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.greedy import CandidateEvaluation, greedy_select
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.parallel import ProcessBackend, ThreadBackend
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.design import StratifiedSample
from repro.samples.optimizer import SamplesCostModel
from repro.workload.families import htap_profile
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

SUBSTRATES = ("columnar", "rowstore", "samples")
#: Read-only (R1) and mixed read/write (HTAP) query pools: maintenance
#: terms must survive matrix reuse and delta fills bit-for-bit too.
MIXES = ("read", "htap")


@lru_cache(maxsize=None)
def _environment(mix: str):
    schema, roles = build_star_schema(
        fact_tables=2,
        fact_rows=200_000,
        fact_attributes=10,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    if mix == "read":
        profile = r1_profile(queries_per_day=6, topic_count=2, templates_per_topic=3)
    else:
        profile = htap_profile(queries_per_day=8, topic_count=2, templates_per_topic=3)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=30)
    sqls = list(dict.fromkeys(q.sql for q in trace))[:14]
    assert len(sqls) >= KERNEL_MIN_BATCH
    return schema, sqls


@lru_cache(maxsize=None)
def _substrate(name: str, mix: str):
    schema, sqls = _environment(mix)
    if name == "columnar":
        model = ColumnarCostModel(schema)
        nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    elif name == "rowstore":
        model = RowstoreCostModel(schema)
        nominal = RowstoreNominalDesigner(RowstoreAdapter(model))
    else:
        model = SamplesCostModel(schema)
        nominal = SamplesNominalDesigner(SamplesAdapter(model))
    candidates = nominal.generate_candidates(Workload.from_sql(sqls))[:10]
    profiles = [model.profile(sql) for sql in sqls]
    if name == "samples" and not candidates:
        used = list(dict.fromkeys(t.table for p in profiles for t in p.tables))
        candidates = [
            StratifiedSample(
                table=table,
                strata_columns=(schema.table(table).column_names[0],),
                fraction=fraction,
            )
            for table in used[:5]
            for fraction in (0.01, 0.1)
        ][:10]
    assert candidates
    return model, candidates, profiles


def _adapter(model, service: CostEvaluationService):
    if isinstance(model, ColumnarCostModel):
        return ColumnarAdapter(model, costing=service)
    if isinstance(model, RowstoreCostModel):
        return RowstoreAdapter(model, costing=service)
    return SamplesAdapter(model, costing=service)


def _stack(model, *, warm: bool, backend=None):
    """(adapter, service) with the design-stream reuse toggles set.

    ``warm=False`` is the cold baseline: every candidate_costs call
    compiles and prices from scratch, every neighborhood fill is full.
    """
    service = CostEvaluationService(model, backend=backend)
    service.matrix_cache_enabled = warm
    service.delta_neighborhood_enabled = warm
    return _adapter(model, service), service


def _workload(sqls) -> Workload:
    return Workload(
        WorkloadQuery(sql=sql, frequency=float(i + 1)) for i, sql in enumerate(sqls)
    )


def _stat_facts(service: CostEvaluationService) -> dict:
    """Exported stats minus wall-clock, plus exported cache item order."""
    facts = {
        f.name: getattr(service.stats, f.name)
        for f in dataclass_fields(service.stats)
        if f.name != "eval_seconds"
    }
    facts["query_cache"] = list(service._query_cache.items())
    return facts


# -- warm matrix == cold rebuild ---------------------------------------------------


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    mix=st.sampled_from(MIXES),
    mask_a=st.integers(0, 1023),
    mask_b=st.integers(0, 1023),
    q_mask=st.integers(1, (1 << 14) - 1),
)
def test_warm_matrix_bit_identical_to_cold(substrate, mix, mask_a, mask_b, q_mask):
    """A second candidate_costs over the resident matrix — full request,
    then an arbitrary (query-subset × candidate-subset) request served by
    superset row-mapping — equals a cold service float-for-float."""
    model, candidates, profiles = _substrate(substrate, mix)
    warm_adapter, warm = _stack(model, warm=True)
    calls = [
        (profiles, [c for i, c in enumerate(candidates) if mask_a & (1 << i)]),
        (
            [p for i, p in enumerate(profiles) if q_mask & (1 << i)],
            [c for i, c in enumerate(candidates) if mask_b & (1 << i)],
        ),
    ]
    for chosen_profiles, chosen_candidates in calls:
        base_w, matrix_w = warm.candidate_costs(
            chosen_profiles, chosen_candidates, warm_adapter.make_design
        )
        cold_adapter, cold = _stack(model, warm=False)
        base_c, matrix_c = cold.candidate_costs(
            chosen_profiles, chosen_candidates, cold_adapter.make_design
        )
        np.testing.assert_array_equal(base_w, base_c)
        np.testing.assert_array_equal(matrix_w, matrix_c)
    assert len(warm._matrix) >= 1
    # The cold baseline retains nothing.
    assert cold.cached_matrix_cells == 0
    assert len(cold._matrix) == 0


def test_repeat_call_serves_from_matrix():
    """The second identical candidate_costs prices zero new cells."""
    model, candidates, profiles = _substrate("columnar", "read")
    adapter, service = _stack(model, warm=True)
    first = service.candidate_costs(profiles, candidates, adapter.make_design)
    priced_once = service.arena_stats.matrix_pairs_priced
    assert priced_once > 0
    assert service.arena_stats.matrix_hits == 0
    second = service.candidate_costs(profiles, candidates, adapter.make_design)
    assert service.arena_stats.matrix_pairs_priced == priced_once
    assert service.arena_stats.matrix_hits == priced_once
    np.testing.assert_array_equal(first[0], second[0])
    np.testing.assert_array_equal(first[1], second[1])


def test_matrix_extension_bit_identical():
    """New SQL extends the resident entry (one matrix_extends, no second
    entry) and only the tails of stale columns are re-priced."""
    model, candidates, profiles = _substrate("columnar", "read")
    adapter, service = _stack(model, warm=True)
    service.candidate_costs(profiles[:8], candidates, adapter.make_design)
    priced_prefix = service.arena_stats.matrix_pairs_priced
    base_w, matrix_w = service.candidate_costs(
        profiles, candidates, adapter.make_design
    )
    assert service.arena_stats.matrix_extends == 1
    assert len(service._matrix) == 1
    # Every cell priced under the 8-query prefix was carried over: the
    # extended call's warm hits are exactly the prefix cells.
    assert service.arena_stats.matrix_hits == priced_prefix
    cold_adapter, cold = _stack(model, warm=False)
    base_c, matrix_c = cold.candidate_costs(
        profiles, candidates, cold_adapter.make_design
    )
    np.testing.assert_array_equal(base_w, base_c)
    np.testing.assert_array_equal(matrix_w, matrix_c)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(substrate=st.sampled_from(SUBSTRATES), mix=st.sampled_from(MIXES))
def test_exported_stats_warmth_independent(substrate, mix):
    """Cold and warm services running the identical call sequence export
    identical counters and identical query-cache contents *in order* —
    matrix warmth must be invisible to checkpoints (kill-resume
    byte-identity)."""
    model, candidates, profiles = _substrate(substrate, mix)
    sequences = []
    for warm in (False, True):
        adapter, service = _stack(model, warm=warm)
        service.candidate_costs(profiles, candidates[:6], adapter.make_design)
        service.candidate_costs(profiles, candidates, adapter.make_design)
        service.candidate_costs(profiles[:8], candidates[2:], adapter.make_design)
        workload = _workload([p.sql for p in profiles])
        ref = adapter.make_design(candidates[:3])
        service.evaluate_neighborhood([ref], [workload])
        service.evaluate_neighborhood(
            [adapter.make_design(candidates[:4])], [workload], reference=ref
        )
        sequences.append(_stat_facts(service))
    assert sequences[0] == sequences[1]


# -- delta neighborhood evaluation -------------------------------------------------


def _least_affecting(model, candidates, profiles):
    """(candidate, affected_count) minimizing the affected-query mask."""
    kernel = kernel_for(model)
    arena = kernel.compile_queries(profiles)
    best, best_count = None, None
    for candidate in candidates:
        count = int(affected_union(kernel.bind(arena, [candidate])).sum())
        if best_count is None or count < best_count:
            best, best_count = candidate, count
    return best, best_count


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(substrate=st.sampled_from(SUBSTRATES), mix=st.sampled_from(MIXES))
def test_delta_neighborhood_bit_identical(substrate, mix):
    """Pricing a candidate design against the incumbent re-reduces only
    the queries the diff can touch, copies the rest from the reference's
    cache, and equals the full fill bit-for-bit — stats included."""
    model, candidates, profiles = _substrate(substrate, mix)
    sqls = [p.sql for p in profiles]
    workload = _workload(sqls)
    added, affected = _least_affecting(model, candidates, profiles)
    ref_structures = [c for c in candidates[:4] if c is not added]
    new_structures = ref_structures + [added]

    results = []
    facts = []
    for warm in (False, True):
        adapter, service = _stack(model, warm=warm)
        ref = adapter.make_design(ref_structures)
        new = adapter.make_design(new_structures)
        before = service.evaluate_neighborhood([ref], [workload])[0][0]
        after = service.evaluate_neighborhood([new], [workload], reference=ref)[0][0]
        results.append((before.per_query_ms, after.per_query_ms))
        facts.append(_stat_facts(service))
        if warm and affected < len(sqls):
            assert service.arena_stats.neighborhood_deltas >= 1
            assert service.arena_stats.delta_pairs_saved >= len(sqls) - affected
    assert results[0] == results[1]
    assert facts[0] == facts[1]


def test_delta_falls_back_when_designs_identical():
    """reference == design (no diff) must take the full path untouched."""
    model, candidates, profiles = _substrate("columnar", "read")
    adapter, service = _stack(model, warm=True)
    workload = _workload([p.sql for p in profiles])
    design = adapter.make_design(candidates[:3])
    twin = adapter.make_design(candidates[:3])
    service.evaluate_neighborhood([design], [workload])
    service.evaluate_neighborhood([twin], [workload], reference=design)
    assert service.arena_stats.neighborhood_deltas == 0


# -- backend equivalence -----------------------------------------------------------


def test_matrix_process_fanout_bit_identical():
    """Warm and cold candidate matrices over ProcessBackend(jobs=2)
    (shm-shipped column slices) equal the serial floats exactly."""
    model, candidates, profiles = _substrate("columnar", "htap")
    serial_adapter, serial = _stack(model, warm=True)
    expect = [
        serial.candidate_costs(profiles, candidates, serial_adapter.make_design),
        serial.candidate_costs(profiles[:9], candidates, serial_adapter.make_design),
    ]
    backend = ProcessBackend(jobs=2)
    try:
        adapter, fanned = _stack(model, warm=True, backend=backend)
        got = [
            fanned.candidate_costs(profiles, candidates, adapter.make_design),
            fanned.candidate_costs(profiles[:9], candidates, adapter.make_design),
        ]
        assert fanned.arena_stats.shm_fanouts >= 1
    finally:
        backend.shutdown()
    for (base_s, matrix_s), (base_p, matrix_p) in zip(expect, got):
        np.testing.assert_array_equal(base_s, base_p)
        np.testing.assert_array_equal(matrix_s, matrix_p)


def test_matrix_thread_fanout_bit_identical():
    model, candidates, profiles = _substrate("rowstore", "read")
    serial_adapter, serial = _stack(model, warm=True)
    base_s, matrix_s = serial.candidate_costs(
        profiles, candidates, serial_adapter.make_design
    )
    for jobs in (2, 3):
        backend = ThreadBackend(jobs=jobs)
        try:
            adapter, fanned = _stack(model, warm=True, backend=backend)
            base_t, matrix_t = fanned.candidate_costs(
                profiles, candidates, adapter.make_design
            )
        finally:
            backend.shutdown()
        np.testing.assert_array_equal(base_s, base_t)
        np.testing.assert_array_equal(matrix_s, matrix_t)


# -- invalidation and bounds -------------------------------------------------------


def test_clear_and_invalidate_drop_matrix():
    model, candidates, profiles = _substrate("columnar", "read")
    adapter, service = _stack(model, warm=True)
    service.candidate_costs(profiles, candidates, adapter.make_design)
    assert service.cached_matrix_cells > 0
    service.clear()
    assert service.cached_matrix_cells == 0
    assert service.cached_matrix_columns == 0

    base_1, matrix_1 = service.candidate_costs(
        profiles, candidates, adapter.make_design
    )
    assert service.cached_matrix_cells > 0
    service.invalidate_design(adapter.make_design(candidates[:1]))
    assert service.cached_matrix_cells == 0
    # The rebuild after either drop is bit-identical.
    base_2, matrix_2 = service.candidate_costs(
        profiles, candidates, adapter.make_design
    )
    np.testing.assert_array_equal(base_1, base_2)
    np.testing.assert_array_equal(matrix_1, matrix_2)


def test_matrix_cell_budget_evicts_columns():
    model, candidates, profiles = _substrate("columnar", "read")
    adapter, service = _stack(model, warm=True)
    service.max_matrix_cells = len(profiles) * 2  # room for ~2 columns
    base_1, matrix_1 = service.candidate_costs(
        profiles, candidates, adapter.make_design
    )
    assert service.arena_stats.matrix_evictions >= 1
    assert service.cached_matrix_cells <= service.max_matrix_cells
    base_2, matrix_2 = service.candidate_costs(
        profiles, candidates, adapter.make_design
    )
    np.testing.assert_array_equal(base_1, base_2)
    np.testing.assert_array_equal(matrix_1, matrix_2)


def test_matrix_excluded_from_state_export():
    """The matrix cache is derived state: exports never mention it, and
    an importing service starts matrix-cold with identical floats."""
    model, candidates, profiles = _substrate("columnar", "read")
    adapter, service = _stack(model, warm=True)
    base_1, matrix_1 = service.candidate_costs(
        profiles, candidates, adapter.make_design
    )
    state = service.export_state()
    assert "matrix" not in str(sorted(state.keys()))

    resumed_adapter, resumed = _stack(model, warm=True)
    resumed.import_state(state)
    assert resumed.cached_matrix_cells == 0
    base_2, matrix_2 = resumed.candidate_costs(
        profiles, candidates, resumed_adapter.make_design
    )
    np.testing.assert_array_equal(base_1, base_2)
    np.testing.assert_array_equal(matrix_1, matrix_2)


# -- incremental greedy selection --------------------------------------------------


def _reference_greedy(evaluation, budget_bytes, max_structures=None, min_benefit_ms=1e-6):
    """The pre-incremental selection loop, verbatim: re-materializes the
    full improvements array every pick.  The regression oracle."""
    if not evaluation.candidates or evaluation.base_costs.size == 0:
        return []
    current = evaluation.base_costs.copy()
    weights = evaluation.weights
    matrix = evaluation.matrix
    sizes = evaluation.sizes
    remaining = float(budget_bytes)
    chosen = []
    available = np.ones(len(evaluation.candidates), dtype=bool)
    while True:
        if max_structures is not None and len(chosen) >= max_structures:
            break
        affordable = available & (sizes <= remaining)
        if not affordable.any():
            break
        improvements = np.maximum(current[None, :] - matrix, 0.0)
        improvements[~np.isfinite(improvements)] = 0.0
        benefits = improvements @ weights
        benefits[~affordable] = -np.inf
        density = benefits / np.maximum(sizes, 1.0)
        pick = int(np.argmax(density))
        if benefits[pick] <= min_benefit_ms:
            break
        chosen.append(pick)
        available[pick] = False
        remaining -= float(sizes[pick])
        current = np.minimum(current, np.where(np.isfinite(matrix[pick]), matrix[pick], np.inf))
    return [evaluation.candidates[i] for i in chosen]


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n_candidates=st.integers(1, 12),
    n_queries=st.integers(1, 10),
    budget=st.integers(1, 500),
    cap=st.one_of(st.none(), st.integers(0, 6)),
)
def test_greedy_incremental_selection_order_regression(
    seed, n_candidates, n_queries, budget, cap
):
    """The incremental update picks the same structures in the same
    order as the full per-pick rebuild, on adversarial matrices with
    unservable (inf) cells, ties, and off-table no-op columns."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(1.0, 100.0, size=n_queries)
    matrix = rng.uniform(0.5, 120.0, size=(n_candidates, n_queries))
    matrix[rng.random(matrix.shape) < 0.2] = np.inf
    # Off-table candidates: whole rows pinned at base (zero benefit).
    matrix[rng.random(n_candidates) < 0.2] = base[None, :]
    evaluation = CandidateEvaluation(
        candidates=list(range(n_candidates)),
        sqls=[f"q{i}" for i in range(n_queries)],
        weights=rng.uniform(0.5, 5.0, size=n_queries),
        base_costs=base,
        matrix=matrix,
        sizes=rng.integers(1, 60, size=n_candidates).astype(np.float64),
    )
    assert greedy_select(evaluation, budget, max_structures=cap) == _reference_greedy(
        evaluation, budget, max_structures=cap
    )


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(substrate=st.sampled_from(SUBSTRATES), mix=st.sampled_from(MIXES))
def test_greedy_selection_order_on_real_matrices(substrate, mix):
    model, candidates, profiles = _substrate(substrate, mix)
    adapter, service = _stack(model, warm=True)
    base, matrix = service.candidate_costs(profiles, candidates, adapter.make_design)
    evaluation = CandidateEvaluation(
        candidates=candidates,
        sqls=[p.sql for p in profiles],
        weights=np.arange(1.0, len(profiles) + 1.0),
        base_costs=base,
        matrix=matrix,
        sizes=np.array(
            [adapter.structure_size(c) for c in candidates], dtype=np.float64
        ),
    )
    budget = int(evaluation.sizes.sum() / 2) + 1
    assert greedy_select(evaluation, budget) == _reference_greedy(evaluation, budget)
