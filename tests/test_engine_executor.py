"""Executor tests, including comparison against a naive reference evaluator
and the invariant that results are independent of the deployed design."""

import math

import numpy as np
import pytest

from repro.engine.design import PhysicalDesign
from repro.engine.executor import ColumnarExecutor, ExecutionError
from repro.engine.projection import Projection, SortColumn
from repro.engine.storage import ColumnarDatabase
from repro.sql.ast import Aggregate
from repro.sql.parser import parse

# -- a tiny brute-force reference evaluator --------------------------------------


def reference_execute(stmt, data: dict[str, dict[str, np.ndarray]]):
    """Naive row-at-a-time evaluation of the SQL subset (no joins beyond one)."""

    def decode(table, column, value):
        return value

    rows = []
    anchor = data[stmt.table]
    n = next(iter(anchor.values())).shape[0]
    for i in range(n):
        row = {f"{stmt.table}.{k}": v[i] for k, v in anchor.items()}
        row.update({k: v[i] for k, v in anchor.items()})
        rows.append(row)

    for join in stmt.joins:
        dim = data[join.table]
        dim_n = next(iter(dim.values())).shape[0]
        index = {}
        for i in range(dim_n):
            key = dim[join.right.name][i] if join.right.table == join.table else dim[join.left.name][i]
            if key not in index:
                index[key] = i
        joined = []
        anchor_key = join.left.name if join.left.table == stmt.table or join.left.table is None else join.right.name
        for row in rows:
            key = row[anchor_key]
            if key in index:
                i = index[key]
                merged = dict(row)
                for k, v in dim.items():
                    merged[f"{join.table}.{k}"] = v[i]
                joined.append(merged)
        rows = joined

    def col(row, ref):
        if ref.table is not None:
            return row.get(f"{ref.table}.{ref.name}", row.get(ref.name))
        return row.get(ref.name, row.get(f"{stmt.table}.{ref.name}"))

    def passes(row):
        from repro.sql.ast import (
            BetweenPredicate,
            ComparisonPredicate,
            InPredicate,
        )

        for pred in stmt.where:
            value = col(row, pred.column)
            if isinstance(pred, ComparisonPredicate):
                literal = pred.value.value
                ops = {
                    "=": lambda a, b: a == b,
                    "!=": lambda a, b: a != b,
                    "<": lambda a, b: a < b,
                    "<=": lambda a, b: a <= b,
                    ">": lambda a, b: a > b,
                    ">=": lambda a, b: a >= b,
                }
                if not ops[pred.op](value, literal):
                    return False
            elif isinstance(pred, BetweenPredicate):
                if not (pred.low.value <= value <= pred.high.value):
                    return False
            elif isinstance(pred, InPredicate):
                if value not in {v.value for v in pred.values}:
                    return False
            else:  # pragma: no cover - subset used in tests
                raise NotImplementedError
        return True

    rows = [r for r in rows if passes(r)]

    if stmt.has_aggregates or stmt.group_by:
        groups: dict[tuple, list] = {}
        for row in rows:
            key = tuple(col(row, g) for g in stmt.group_by)
            groups.setdefault(key, []).append(row)
        out = []
        for key, members in groups.items():
            result = []
            for item in stmt.select:
                if isinstance(item.expr, Aggregate):
                    agg = item.expr
                    if agg.column is None:
                        result.append(len(members))
                        continue
                    values = [col(r, agg.column) for r in members]
                    if agg.distinct:
                        values = list(set(values))
                    if agg.func == "COUNT":
                        result.append(len(values))
                    elif agg.func == "SUM":
                        result.append(sum(values))
                    elif agg.func == "AVG":
                        result.append(sum(values) / len(values))
                    elif agg.func == "MIN":
                        result.append(min(values))
                    elif agg.func == "MAX":
                        result.append(max(values))
                else:
                    result.append(col(members[0], item.expr))
            out.append(tuple(result))
        return out
    return [tuple(col(r, item.expr) for item in stmt.select) for r in rows]


@pytest.fixture
def database(sales_schema, sales_data):
    return ColumnarDatabase(sales_schema, sales_data)


@pytest.fixture
def executor(database):
    return ColumnarExecutor(database)


def as_multiset(rows):
    """Rows as a sorted list of rounded tuples (summation order varies by
    storage layout, so floats must be compared with tolerance)."""
    return sorted(
        tuple(
            round(float(x), 6) if isinstance(x, (int, float, np.number)) else x
            for x in row
        )
        for row in rows
    )


QUERIES = [
    "SELECT sales.store FROM sales WHERE sales.store = 3",
    "SELECT sales.store, sales.amount FROM sales WHERE sales.day BETWEEN 10 AND 40",
    "SELECT COUNT(*) FROM sales WHERE sales.product = 7",
    "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 1",
    "SELECT sales.store, COUNT(*) FROM sales GROUP BY sales.store",
    "SELECT sales.store, SUM(sales.amount), MIN(sales.day) FROM sales WHERE sales.product < 100 GROUP BY sales.store",
    "SELECT sales.product, AVG(sales.amount) FROM sales WHERE sales.store IN (1, 2, 3) GROUP BY sales.product",
    "SELECT COUNT(DISTINCT sales.store) FROM sales WHERE sales.day < 100",
]


class TestAgainstReference:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_reference(self, executor, sales_data, sql):
        result = executor.execute(sql)
        expected = reference_execute(parse(sql), sales_data)
        got = as_multiset(result.rows)
        want = as_multiset(expected)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g == pytest.approx(w)

    def test_join_matches_reference(self, executor, sales_data):
        sql = (
            "SELECT stores.region, COUNT(*) FROM sales "
            "JOIN stores ON sales.store = stores.store_id "
            "WHERE stores.region = 2 GROUP BY stores.region"
        )
        result = executor.execute(sql)
        expected = reference_execute(parse(sql), sales_data)
        assert as_multiset(result.rows) == pytest.approx(as_multiset(expected))


class TestDesignIndependence:
    """The deployed design must never change query *results*."""

    DESIGNS = [
        PhysicalDesign.empty(),
        PhysicalDesign.of(
            Projection("sales", ("store", "amount"), (SortColumn("store"),))
        ),
        PhysicalDesign.of(
            Projection(
                "sales",
                ("product", "store", "amount", "day"),
                (SortColumn("product"), SortColumn("day")),
            )
        ),
    ]

    @pytest.mark.parametrize("sql", QUERIES[:6])
    def test_results_identical_across_designs(self, executor, sql):
        baseline = as_multiset(executor.execute(sql).rows)
        for design in self.DESIGNS:
            got = as_multiset(executor.execute(sql, design).rows)
            assert got == pytest.approx(baseline), str(design)

    def test_sorted_projection_reduces_rows_scanned(self, executor):
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.product = 7"
        design = PhysicalDesign.of(
            Projection("sales", ("product", "amount"), (SortColumn("product"),))
        )
        full = executor.execute(sql)
        fast = executor.execute(sql, design)
        assert fast.stats.rows_scanned < full.stats.rows_scanned
        assert not fast.stats.projection.is_super


class TestOrderingAndLimit:
    def test_order_by_descending(self, executor):
        result = executor.execute(
            "SELECT sales.store, SUM(sales.amount) AS total FROM sales "
            "GROUP BY sales.store ORDER BY total DESC LIMIT 5"
        )
        totals = [row[1] for row in result.rows]
        assert totals == sorted(totals, reverse=True)
        assert len(result.rows) == 5

    def test_order_by_plain_column(self, executor):
        result = executor.execute(
            "SELECT sales.day FROM sales WHERE sales.store = 1 ORDER BY sales.day LIMIT 20"
        )
        days = [row[0] for row in result.rows]
        assert days == sorted(days)

    def test_limit_without_order(self, executor):
        result = executor.execute("SELECT sales.store FROM sales LIMIT 7")
        assert result.row_count == 7


class TestErrors:
    def test_unknown_table(self, executor):
        with pytest.raises((ExecutionError, ValueError)):
            executor.execute("SELECT x FROM nope")

    def test_unknown_column_in_where(self, executor):
        with pytest.raises((ExecutionError, ValueError)):
            executor.execute("SELECT sales.store FROM sales WHERE sales.zzz = 1")

    def test_empty_result_group_by(self, executor):
        result = executor.execute(
            "SELECT sales.store, COUNT(*) FROM sales WHERE sales.day = 99999 GROUP BY sales.store"
        )
        assert result.rows == []
