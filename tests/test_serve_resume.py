"""Kill-resume tests for the serve daemon.

Boundary swap mode states a hard contract: a daemon killed at *any*
checkpoint write and restarted with ``--resume`` replays to the same
stream position, window contents, and active design — the full run
outcome is bit-identical to an uninterrupted one.  Verified two ways:

* in-process — :class:`SimulatedCrash` fault injection at every write
  boundary (and a double-crash: the resumed run crashes again);
* subprocess — ``repro serve`` SIGKILLed for real via
  ``REPRO_STATE_CRASH_AFTER``, then rerun with ``--resume``; stdout
  diffs clean against the uninterrupted baseline.
"""

import os
import signal
import subprocess
import sys

import pytest

import repro
from repro import RunConfig, ServeConfig
from repro.state import RunCheckpointer, SimulatedCrash

# 56 days / 14-day windows: 3 interior boundaries, at least one online
# re-design and swap, 4 checkpoint writes — small enough to sweep.
TINY = dict(
    workload="R1",
    days=56,
    window_days=14,
    queries_per_day=4,
    n_samples=2,
    iterations=1,
    legacy_tables=5,
    backend=None,
)

CLI_SCALE = [
    "--days", "56", "--window-days", "14", "--queries-per-day", "4",
    "--samples", "2", "--seed", "42",
]


def tiny_daemon():
    session = repro.serve_session(
        RunConfig(**TINY), ServeConfig(swap_mode="boundary", min_window_queries=4)
    )
    return session.daemon()


def normalize(outcome):
    """Every deterministic field of a serve outcome (no wall-clock)."""
    return (
        outcome.position,
        outcome.windows,
        outcome.triggers,
        outcome.redesigns_launched,
        outcome.redesigns_failed,
        outcome.swaps,
        outcome.final_epoch,
        outcome.final_design_digest,
        outcome.structure_count,
        outcome.design_price_bytes,
        outcome.drift_readings,
        outcome.drift_alarms,
        tuple((p.position, p.timestamp, p.epoch, p.cost_ms) for p in outcome.priced),
    )


@pytest.fixture(scope="module")
def baseline():
    return normalize(tiny_daemon().run())


class TestInProcessCrashSweep:
    def count_writes(self, tmp_path):
        daemon = tiny_daemon()
        daemon.checkpointer = RunCheckpointer(tmp_path / "count")
        daemon.run()
        return daemon.checkpointer.writes

    def test_kill_at_every_write_boundary(self, tmp_path, baseline):
        writes = self.count_writes(tmp_path)
        assert writes >= 4  # >= 3 window boundaries + the stop snapshot
        for boundary in range(1, writes + 1):
            path = tmp_path / f"crash-{boundary}"
            crashed = tiny_daemon()
            crashed.checkpointer = RunCheckpointer(path, crash_after=boundary)
            with pytest.raises(SimulatedCrash):
                crashed.run()
            resumed = tiny_daemon()
            resumed.checkpointer = RunCheckpointer(path, resume=True)
            outcome = resumed.run()
            assert outcome.resumed
            assert normalize(outcome) == baseline, f"diverged at write {boundary}"

    def test_double_crash_then_resume(self, tmp_path, baseline):
        path = tmp_path / "double"
        first = tiny_daemon()
        first.checkpointer = RunCheckpointer(path, crash_after=1)
        with pytest.raises(SimulatedCrash):
            first.run()
        second = tiny_daemon()
        second.checkpointer = RunCheckpointer(path, resume=True, crash_after=2)
        with pytest.raises(SimulatedCrash):
            second.run()
        third = tiny_daemon()
        third.checkpointer = RunCheckpointer(path, resume=True)
        assert normalize(third.run()) == baseline

    def test_resume_without_snapshot_starts_fresh(self, tmp_path, baseline):
        daemon = tiny_daemon()
        daemon.checkpointer = RunCheckpointer(tmp_path / "fresh", resume=True)
        outcome = daemon.run()
        assert not outcome.resumed
        assert normalize(outcome) == baseline

    def test_relaunched_pending_redesign_lands_identically(self, tmp_path, baseline):
        """Crash with a re-design in flight: the resumed daemon relaunches
        the task from its checkpointed tuple and swaps in the identical
        design."""
        path = tmp_path / "pending"
        crashed = tiny_daemon()
        crashed.checkpointer = RunCheckpointer(path, crash_after=1)
        with pytest.raises(SimulatedCrash):
            crashed.run()
        # The first write is the first window boundary — by then the
        # drift policy has launched re-design #0.
        resumed = tiny_daemon()
        resumed.checkpointer = RunCheckpointer(path, resume=True)
        state = resumed.checkpointer.load("serve", resumed._state_key)
        assert state["pending"] is not None
        assert normalize(resumed.run()) == baseline


class TestSubprocessSigkill:
    def run_cli(self, tmp_path, name, *extra, env_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repro_src()), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [
                sys.executable, "-m", "repro", "serve", *CLI_SCALE,
                "--checkpoint", str(tmp_path / name), *extra,
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        baseline = self.run_cli(tmp_path, "base")
        assert baseline.returncode == 0, baseline.stderr
        assert "dropped 0" in baseline.stdout

        crashed = self.run_cli(
            tmp_path, "kill", env_extra={"REPRO_STATE_CRASH_AFTER": "2"}
        )
        # A real SIGKILL, not an exception path.
        assert crashed.returncode == -signal.SIGKILL

        resumed = self.run_cli(tmp_path, "kill", "--resume")
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == baseline.stdout


def repro_src():
    import repro as package

    return os.path.dirname(os.path.dirname(os.path.abspath(package.__file__)))
