"""Tests for the replay harness and reporting."""

import pytest

from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.future_knowing import FutureKnowingDesigner
from repro.designers.no_design import NoDesign
from repro.harness.replay import DesignerRun, WindowOutcome, beneficial_queries, replay
from repro.harness.reporting import format_series, format_table
from repro.workload.workload import Workload


class TestBeneficialQueries:
    def test_filters_trivial_queries(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        window = tiny_windows[1]
        kept = beneficial_queries(columnar_adapter, nominal, window)
        kept_sqls = {q.sql for q in kept}
        # trivial full scans must be filtered out
        assert not any(sql.startswith("SELECT *") for sql in kept_sqls)
        assert 0 < len(kept) <= len(window.collapsed())

    def test_factor_controls_strictness(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        window = tiny_windows[1]
        loose = beneficial_queries(columnar_adapter, nominal, window, factor=1.01)
        strict = beneficial_queries(columnar_adapter, nominal, window, factor=50.0)
        assert len(strict) <= len(loose)


class TestReplay:
    @pytest.fixture
    def outcome(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        designers = {
            "NoDesign": NoDesign(columnar_adapter),
            "ExistingDesigner": nominal,
            "FutureKnowingDesigner": FutureKnowingDesigner(nominal),
        }
        return replay(
            tiny_windows,
            designers,
            columnar_adapter,
            candidate_source=nominal,
            workload_name="tiny",
        )

    def test_every_designer_has_outcomes(self, outcome):
        for run in outcome.runs.values():
            assert run.windows

    def test_future_knowing_beats_nominal(self, outcome):
        oracle = outcome.run("FutureKnowingDesigner").mean_average_ms
        nominal = outcome.run("ExistingDesigner").mean_average_ms
        nothing = outcome.run("NoDesign").mean_average_ms
        assert oracle < nominal < nothing

    def test_speedup_helper(self, outcome):
        avg, mx = outcome.speedup("NoDesign", "FutureKnowingDesigner")
        assert avg > 1.0
        assert mx >= 1.0

    def test_no_design_has_zero_structures(self, outcome):
        for window in outcome.run("NoDesign").windows:
            assert window.structure_count == 0
            assert window.design_price_bytes == 0

    def test_skip_transitions(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        full = replay(
            tiny_windows, {"n": nominal}, columnar_adapter, candidate_source=nominal
        )
        skipped = replay(
            tiny_windows,
            {"n": nominal},
            columnar_adapter,
            candidate_source=nominal,
            skip_transitions=1,
        )
        assert len(skipped.run("n").windows) == len(full.run("n").windows) - 1

    def test_max_transitions(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        capped = replay(
            tiny_windows,
            {"n": nominal},
            columnar_adapter,
            candidate_source=nominal,
            max_transitions=1,
        )
        assert len(capped.run("n").windows) == 1

    def test_before_transition_hook_called(self, columnar_adapter, tiny_windows):
        calls = []
        nominal = ColumnarNominalDesigner(columnar_adapter)
        replay(
            tiny_windows,
            {"n": nominal},
            columnar_adapter,
            candidate_source=nominal,
            before_transition=lambda i, train, test: calls.append(i),
        )
        assert calls == list(range(len(tiny_windows) - 1))


class TestAggregation:
    def test_designer_run_means(self):
        run = DesignerRun(
            name="x",
            windows=[
                WindowOutcome(0, 10.0, 100.0, 1.0, 0, 0),
                WindowOutcome(1, 30.0, 300.0, 3.0, 0, 0),
            ],
        )
        assert run.mean_average_ms == pytest.approx(20.0)
        assert run.mean_max_ms == pytest.approx(200.0)
        assert run.mean_design_seconds == pytest.approx(2.0)

    def test_empty_run(self):
        run = DesignerRun(name="x")
        assert run.mean_average_ms == 0.0


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 1234.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert any("1,234" in line or "1234" in line for line in lines)

    def test_format_series_bars_scale(self):
        text = format_series("x", "y", [(1, 10.0), (2, 20.0)])
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].count("#") < lines[1].count("#")

    def test_format_series_zero_values(self):
        text = format_series("x", "y", [(1, 0.0)])
        assert "#" not in text.split("|")[1]
