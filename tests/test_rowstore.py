"""Row-store substrate tests: indices, views, cost model, real structures."""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database
from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView
from repro.rowstore.optimizer import RowstoreCostModel
from repro.rowstore.storage import RowstoreDatabase, RowstoreExecutor


@pytest.fixture
def model(sales_schema) -> RowstoreCostModel:
    return RowstoreCostModel(sales_schema)


class TestIndex:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Index("t", ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Index("t", ("a", "a"))

    def test_seek_prefix_equalities(self):
        index = Index("t", ("a", "b", "c"))
        depth, used_range = index.seek_prefix({"a", "b"}, set())
        assert (depth, used_range) == (2, False)

    def test_seek_prefix_range_terminates(self):
        index = Index("t", ("a", "b", "c"))
        depth, used_range = index.seek_prefix({"a"}, {"b"})
        assert (depth, used_range) == (2, True)

    def test_seek_prefix_gap_stops(self):
        index = Index("t", ("a", "b", "c"))
        depth, _ = index.seek_prefix({"c"}, set())  # a missing → useless
        assert depth == 0

    def test_size_includes_overhead(self, sales_schema):
        table = sales_schema.table("sales")
        index = Index("sales", ("store",))
        assert index.size_bytes(table) == 5000 * (8 + 12)


class TestMaterializedView:
    def test_requires_group_columns(self):
        with pytest.raises(ValueError):
            MaterializedView("t", (), ("m",))

    def test_group_measure_overlap_rejected(self):
        with pytest.raises(ValueError):
            MaterializedView("t", ("a",), ("a",))

    def test_answers_matching_aggregate(self, model):
        view = MaterializedView("sales", ("store", "product"), ("amount",))
        profile = model.profile(
            "SELECT sales.store, SUM(sales.amount) FROM sales "
            "WHERE sales.product = 3 GROUP BY sales.store"
        )
        assert view.answers(profile)

    def test_rejects_filter_on_non_group_column(self, model):
        view = MaterializedView("sales", ("store",), ("amount",))
        profile = model.profile(
            "SELECT sales.store, SUM(sales.amount) FROM sales "
            "WHERE sales.day = 3 GROUP BY sales.store"
        )
        assert not view.answers(profile)

    def test_rejects_uncovered_measure(self, model):
        view = MaterializedView("sales", ("store",), ("amount",))
        profile = model.profile(
            "SELECT sales.store, SUM(sales.day) FROM sales GROUP BY sales.store"
        )
        assert not view.answers(profile)

    def test_rejects_non_aggregate_query(self, model):
        view = MaterializedView("sales", ("store",), ("amount",))
        profile = model.profile("SELECT sales.store FROM sales")
        assert not view.answers(profile)

    def test_rejects_distinct_aggregates(self, model):
        view = MaterializedView("sales", ("store",), ("amount",))
        profile = model.profile(
            "SELECT COUNT(DISTINCT sales.amount) FROM sales GROUP BY sales.store"
        )
        assert not view.answers(profile)

    def test_rejects_joins(self, model):
        view = MaterializedView("sales", ("store",), ("amount",))
        profile = model.profile(
            "SELECT SUM(sales.amount) FROM sales JOIN stores ON sales.store = stores.store_id "
            "GROUP BY sales.store"
        )
        assert not view.answers(profile)

    def test_estimated_rows_product_of_ndv(self, model):
        view = MaterializedView("sales", ("store", "flag"), ("amount",))
        rows = view.estimated_rows(model.statistics["sales"])
        assert rows == 50 * 2


class TestRowstoreCostModel:
    def test_index_beats_scan_for_selective_filter(self, model):
        sql = "SELECT sales.amount FROM sales WHERE sales.product = 7"
        scan = model.query_cost(sql, RowstoreDesign.empty())
        indexed = model.query_cost(sql, RowstoreDesign.of(Index("sales", ("product",))))
        assert indexed < scan

    def test_covering_index_beats_plain_index(self, model):
        sql = "SELECT sales.amount FROM sales WHERE sales.product = 7"
        plain = model.query_cost(sql, RowstoreDesign.of(Index("sales", ("product",))))
        covering = model.query_cost(
            sql, RowstoreDesign.of(Index("sales", ("product", "amount")))
        )
        assert covering < plain

    def test_view_beats_index_for_aggregates(self, model):
        sql = (
            "SELECT sales.store, SUM(sales.amount) FROM sales GROUP BY sales.store"
        )
        design_view = RowstoreDesign.of(MaterializedView("sales", ("store",), ("amount",)))
        design_index = RowstoreDesign.of(Index("sales", ("store",)))
        assert model.query_cost(sql, design_view) < model.query_cost(sql, design_index)

    def test_useless_structures_ignored(self, model):
        sql = "SELECT sales.amount FROM sales WHERE sales.product = 7"
        useless = RowstoreDesign.of(Index("sales", ("day",)))
        assert model.query_cost(sql, useless) == pytest.approx(
            model.query_cost(sql, RowstoreDesign.empty())
        )

    def test_choose_path(self, model):
        sql = "SELECT sales.amount FROM sales WHERE sales.product = 7"
        index = Index("sales", ("product", "amount"))
        design = RowstoreDesign.of(index, Index("sales", ("day",)))
        assert model.choose_path(model.profile(sql), design) == index

    def test_full_scan_when_empty(self, model):
        sql = "SELECT sales.amount FROM sales"
        assert model.choose_path(model.profile(sql), RowstoreDesign.empty()) is None


class TestRowstoreDesign:
    def test_of_partitions_structures(self):
        index = Index("t", ("a",))
        view = MaterializedView("t", ("a",), ("b",))
        design = RowstoreDesign.of(index, view)
        assert design.indices == frozenset({index})
        assert design.views == frozenset({view})
        assert len(design) == 2

    def test_price_sums_components(self, sales_schema, model):
        index = Index("sales", ("store",))
        view = MaterializedView("sales", ("store",), ("amount",))
        design = RowstoreDesign.of(index, view)
        table = sales_schema.table("sales")
        expected = index.size_bytes(table) + view.size_bytes(
            table, model.statistics["sales"]
        )
        assert design.price(sales_schema, model.statistics) == expected

    def test_with_structure_persistent(self):
        base = RowstoreDesign.empty()
        extended = base.with_structure(Index("t", ("a",)))
        assert len(base) == 0 and len(extended) == 1


class TestRealStructures:
    def test_index_seek_matches_mask(self, sales_schema, sales_data):
        database = RowstoreDatabase(sales_schema, sales_data)
        index_data = database.index_data(Index("sales", ("store", "day")))
        seek = index_data.seek_equal("store", 3)
        truth = np.nonzero(sales_data["sales"]["store"] == 3)[0]
        assert sorted(seek.tolist()) == sorted(truth.tolist())

    def test_index_range_seek(self, sales_schema, sales_data):
        database = RowstoreDatabase(sales_schema, sales_data)
        index_data = database.index_data(Index("sales", ("day",)))
        seek = index_data.seek_range("day", 10, 20)
        truth = np.nonzero(
            (sales_data["sales"]["day"] >= 10) & (sales_data["sales"]["day"] <= 20)
        )[0]
        assert sorted(seek.tolist()) == sorted(truth.tolist())

    def test_seek_on_non_leading_column_rejected(self, sales_schema, sales_data):
        database = RowstoreDatabase(sales_schema, sales_data)
        index_data = database.index_data(Index("sales", ("store", "day")))
        with pytest.raises(ValueError):
            index_data.seek_equal("day", 3)

    def test_view_contents_match_aggregation(self, sales_schema, sales_data):
        database = RowstoreDatabase(sales_schema, sales_data)
        view_data = database.view_data(
            MaterializedView("sales", ("store",), ("amount",))
        )
        store = 7
        mask = sales_data["sales"]["store"] == store
        slot = np.nonzero(view_data.groups["store"] == store)[0][0]
        assert view_data.measures["amount"]["sum"][slot] == pytest.approx(
            sales_data["sales"]["amount"][mask].sum()
        )
        assert view_data.counts[slot] == mask.sum()

    def test_executor_results_design_independent(self, sales_schema, sales_data):
        database = RowstoreDatabase(sales_schema, sales_data)
        executor = RowstoreExecutor(database)
        sql = "SELECT sales.store, SUM(sales.amount) AS t FROM sales WHERE sales.store = 3 GROUP BY sales.store"
        result_plain, path_plain = executor.execute(sql)
        design = RowstoreDesign.of(MaterializedView("sales", ("store", "product"), ("amount",)))
        result_designed, path_designed = executor.execute(sql, design)
        assert result_plain.rows[0][0] == result_designed.rows[0][0]
        assert result_plain.rows[0][1] == pytest.approx(result_designed.rows[0][1])
        assert path_plain.path is None
        assert path_designed.path is not None
        assert path_designed.rows_touched < path_plain.rows_touched

    def test_deploy_counts(self, sales_schema, sales_data):
        database = RowstoreDatabase(sales_schema, sales_data)
        design = RowstoreDesign.of(
            Index("sales", ("store",)),
            MaterializedView("sales", ("store",), ("amount",)),
        )
        assert database.deploy(design) == 2
        assert database.deploy(design) == 0
