"""Native materialized-view rollup must agree with base-table execution."""

import numpy as np
import pytest

from repro.rowstore.design import RowstoreDesign
from repro.rowstore.matview import MaterializedView
from repro.rowstore.storage import RowstoreDatabase, RowstoreExecutor


@pytest.fixture
def executor(sales_schema, sales_data) -> RowstoreExecutor:
    """Executor whose *cost model* sees benchmark-scale statistics (so the
    optimizer genuinely prefers the view) while the stored data stays small
    enough to verify answers exactly."""
    from repro.catalog.schema import Schema, Table
    from repro.rowstore.optimizer import RowstoreCostModel

    big = Schema()
    for table in sales_schema.tables.values():
        big.add_table(
            Table(
                table.name,
                list(table.columns),
                row_count=5_000_000 if table.name == "sales" else table.row_count,
            )
        )
    database = RowstoreDatabase(sales_schema, sales_data)
    return RowstoreExecutor(database, RowstoreCostModel(big))


VIEW = MaterializedView("sales", ("store", "product"), ("amount", "day"))
DESIGN = RowstoreDesign.of(VIEW)

ROLLUP_QUERIES = [
    "SELECT sales.store, SUM(sales.amount) FROM sales GROUP BY sales.store",
    "SELECT sales.store, COUNT(*) FROM sales WHERE sales.product < 50 GROUP BY sales.store",
    "SELECT sales.store, AVG(sales.amount) FROM sales GROUP BY sales.store",
    "SELECT sales.store, MIN(sales.day), MAX(sales.day) FROM sales GROUP BY sales.store",
    "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 3",
    "SELECT COUNT(*) FROM sales WHERE sales.store IN (1, 2)",
]


def normalize(rows):
    return sorted(
        tuple(round(float(v), 5) for v in row) for row in rows
    )


class TestRollupCorrectness:
    @pytest.mark.parametrize("sql", ROLLUP_QUERIES)
    def test_view_answers_match_base(self, executor, sql):
        base_result, base_path = executor.execute(sql)
        view_result, view_path = executor.execute(sql, DESIGN)
        assert base_path.path is None
        assert view_path.path == VIEW, "optimizer should pick the view"
        got = normalize(view_result.rows)
        want = normalize(base_result.rows)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g == pytest.approx(w, rel=1e-9, abs=1e-9)

    def test_rollup_touches_fewer_rows(self, executor, sales_data):
        sql = "SELECT sales.store, SUM(sales.amount) FROM sales GROUP BY sales.store"
        _, report = executor.execute(sql, DESIGN)
        assert report.rows_touched < sales_data["sales"]["store"].shape[0]

    def test_empty_filter_result(self, executor):
        sql = "SELECT sales.store, SUM(sales.amount) FROM sales WHERE sales.store = 99999 GROUP BY sales.store"
        result, path = executor.execute(sql, DESIGN)
        assert path.path == VIEW
        assert result.rows == []

    def test_unservable_query_falls_back(self, executor):
        # Filter on a non-grouping column → the view cannot answer; the
        # executor must fall back to the base pipeline.
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.day = 5"
        result, path = executor.execute(sql, DESIGN)
        assert path.path is None or not isinstance(path.path, MaterializedView)
        assert result.rows  # still a correct exact answer
