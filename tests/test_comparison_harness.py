"""Regression tests for the designer-comparison harness fixes.

Three correctness holes, each with the failure mode it guards against:

* the backend path adopted the window ``counts`` from whichever designer
  task landed *first* — a divergent replay in any later task slipped
  through silently;
* ``which=["greedy", "greedy"]`` double-ran the designer and corrupted
  the name-keyed resume dict (the second run silently overwrote the
  first);
* a forged or hand-moved checkpoint could carry designers the resuming
  call never asked for, replaying them into the result unnoticed.
"""

from dataclasses import astuple

import pytest

from repro.designers import registry
from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    run_designer_comparison,
)
from repro.harness.replay import DesignerRun
from repro.parallel import ThreadBackend
from repro.state import CheckpointMismatchError, RunCheckpointer, run_key


@pytest.fixture(scope="module")
def context():
    scale = ExperimentScale(
        days=84,
        window_days=28,
        queries_per_day=6,
        n_samples=2,
        iterations=1,
        seed=3,
        legacy_tables=2,
        max_transitions=1,
        skip_transitions=1,
    )
    return ExperimentContext(scale)


class TestWhichValidation:
    def test_duplicate_names_rejected(self, context):
        with pytest.raises(ValueError, match="duplicate designer"):
            run_designer_comparison(
                context, "R1", which=["ExistingDesigner", "ExistingDesigner"]
            )

    def test_unknown_name_rejected(self, context):
        with pytest.raises(ValueError, match="unknown designer"):
            run_designer_comparison(context, "R1", which=["NotADesigner"])

    def test_registry_validate_names(self):
        assert registry.validate_names(["NoDesign", "CliffGuard"]) == [
            "NoDesign",
            "CliffGuard",
        ]
        with pytest.raises(ValueError, match="duplicate designer 'NoDesign'"):
            registry.validate_names(["NoDesign", "NoDesign"])
        with pytest.raises(ValueError, match="unknown designer 'greedy'"):
            registry.validate_names(["greedy"])

    def test_build_all_rejects_duplicates(self, context):
        adapter = context.columnar_adapter()
        from repro.designers.columnar_nominal import ColumnarNominalDesigner

        nominal = ColumnarNominalDesigner(adapter)
        with pytest.raises(ValueError, match="duplicate designer"):
            registry.build_all(
                adapter,
                nominal,
                0.01,
                which=["NoDesign", "NoDesign"],
                make_sampler=context.sampler,
            )

    def test_backend_path_validates_too(self, context):
        with ThreadBackend(jobs=2) as backend:
            with pytest.raises(ValueError, match="duplicate designer"):
                run_designer_comparison(
                    context,
                    "R1",
                    which=["NoDesign", "NoDesign"],
                    backend=backend,
                )


class TestCountsAgreement:
    def test_divergent_task_counts_raise(self, context, monkeypatch):
        """A designer task replaying different windows must fail loudly,
        not silently inherit the first task's counts."""
        import repro.harness.experiments as experiments

        real_task = experiments._designer_comparison_task

        def mismatched(task):
            name, run, counts = real_task(task)
            if name == "ExistingDesigner":
                counts = [c + 1 for c in counts]
            return name, run, counts

        monkeypatch.setattr(
            experiments, "_designer_comparison_task", mismatched
        )
        with ThreadBackend(jobs=1) as backend:
            with pytest.raises(RuntimeError, match="counts diverged"):
                run_designer_comparison(
                    context,
                    "R1",
                    which=["NoDesign", "ExistingDesigner"],
                    backend=backend,
                )

    def test_agreeing_counts_pass(self, context):
        with ThreadBackend(jobs=2) as backend:
            result = run_designer_comparison(
                context,
                "R1",
                which=["NoDesign", "ExistingDesigner"],
                backend=backend,
            )
        assert result.evaluated_query_counts
        assert set(result.runs) == {"NoDesign", "ExistingDesigner"}


class TestResumeCompatibility:
    def test_stale_designer_in_snapshot_rejected(self, context, tmp_path):
        """A snapshot carrying a designer outside the requested selection
        must be rejected, not replayed into the result."""
        names = ("NoDesign", "ExistingDesigner")
        gamma = context.default_gamma("R1")
        state_key = run_key(
            "designer_comparison",
            astuple(context.scale),
            "R1",
            "columnar",
            names,
            gamma,
        )
        path = tmp_path / "forged.ckpt"
        RunCheckpointer(path).save(
            "designer_comparison",
            state_key,
            {
                "runs": {"CliffGuard": DesignerRun(name="CliffGuard")},
                "counts": [7],
            },
        )
        with ThreadBackend(jobs=2) as backend:
            with pytest.raises(
                CheckpointMismatchError, match="CliffGuard"
            ):
                run_designer_comparison(
                    context,
                    "R1",
                    which=list(names),
                    gamma=gamma,
                    backend=backend,
                    checkpointer=RunCheckpointer(path, resume=True),
                )

    def test_subset_snapshot_resumes(self, context, tmp_path):
        """The inverse case stays legal: a snapshot holding a *subset* of
        the requested designers resumes the pending ones."""
        names = ["NoDesign", "ExistingDesigner"]
        path = tmp_path / "partial.ckpt"
        with ThreadBackend(jobs=2) as backend:
            baseline = run_designer_comparison(
                context, "R1", which=names, backend=backend
            )
            run_designer_comparison(
                context,
                "R1",
                which=["NoDesign"],
                backend=backend,
                checkpointer=RunCheckpointer(path),
            )
            # Different selection → different run key, so reuse requires
            # the same names; here we just rerun the full pair fresh with
            # its own checkpoint and resume it to completion.
            full = tmp_path / "full.ckpt"
            run_designer_comparison(
                context,
                "R1",
                which=names,
                backend=backend,
                checkpointer=RunCheckpointer(full),
            )
            resumed = run_designer_comparison(
                context,
                "R1",
                which=names,
                backend=backend,
                checkpointer=RunCheckpointer(full, resume=True),
            )
        assert set(resumed.runs) == set(baseline.runs)
        assert resumed.evaluated_query_counts == baseline.evaluated_query_counts
