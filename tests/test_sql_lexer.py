"""Unit tests for the SQL lexer."""

import pytest

from repro.sql.lexer import LexError, Token, TokenType, tokenize


def kinds(sql: str) -> list[TokenType]:
    return [t.type for t in tokenize(sql)]


def values(sql: str) -> list[str]:
    return [t.value for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only(self):
        assert kinds("   \t\n ") == [TokenType.EOF]

    def test_keywords_are_case_insensitive(self):
        for text in ("select", "SELECT", "SeLeCt"):
            token = tokenize(text)[0]
            assert token.type is TokenType.KEYWORD
            assert token.value == "SELECT"

    def test_identifier_vs_keyword(self):
        tokens = tokenize("select selection")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[1].value == "selection"

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("attr_07x")[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "attr_07x"


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "42"

    def test_float(self):
        token = tokenize("3.14")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "3.14"

    def test_negative_number(self):
        token = tokenize("-7")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "-7"

    def test_qualified_column_is_not_a_float(self):
        # ``t.c`` must lex as identifier DOT identifier, not a number.
        assert kinds("t.c")[:3] == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
        ]

    def test_number_followed_by_dot_identifier(self):
        # "1.x" → number 1, dot, identifier x (not float).
        tokens = tokenize("1.x")
        assert tokens[0].value == "1"
        assert tokens[1].type is TokenType.DOT


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_empty_string(self):
        token = tokenize("''")[0]
        assert token.type is TokenType.STRING
        assert token.value == ""


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "!="])
    def test_operator(self, op):
        token = tokenize(op)[0]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_angle_brackets_normalize_to_not_equal(self):
        token = tokenize("<>")[0]
        assert token.value == "!="

    def test_star_and_punctuation(self):
        assert kinds("*,()")[:4] == [
            TokenType.STAR,
            TokenType.COMMA,
            TokenType.LPAREN,
            TokenType.RPAREN,
        ]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("select @")


class TestPositions:
    def test_positions_point_into_source(self):
        sql = "SELECT a FROM t"
        tokens = tokenize(sql)
        for token in tokens[:-1]:
            assert sql[token.position :].upper().startswith(
                token.value.upper()
            ) or token.type is TokenType.STRING

    def test_full_statement_token_stream(self):
        sql = "SELECT a, SUM(b) FROM t WHERE c = 5 GROUP BY a ORDER BY a DESC LIMIT 10"
        stream = values(sql)
        assert stream[0] == "SELECT"
        assert "GROUP" in stream and "ORDER" in stream and "LIMIT" in stream
