"""Tests for the generic continuous BNT robust optimizer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.bnt import (
    bnt_minimize,
    descent_direction,
    find_worst_neighbors,
    min_norm_point,
    sample_ball,
)


class TestSampleBall:
    def test_all_points_within_radius(self):
        rng = np.random.default_rng(0)
        center = np.array([1.0, -2.0])
        points = sample_ball(center, 0.5, 100, rng)
        distances = np.linalg.norm(points - center, axis=1)
        assert (distances <= 0.5 + 1e-9).all()

    def test_includes_center_and_boundary(self):
        rng = np.random.default_rng(0)
        center = np.zeros(2)
        points = sample_ball(center, 1.0, 10, rng)
        norms = np.linalg.norm(points, axis=1)
        assert np.isclose(norms, 0.0).any()
        assert np.isclose(norms, 1.0).sum() >= 4  # axis boundary points


class TestMinNormPoint:
    def test_single_vector(self):
        v = np.array([[3.0, 4.0]])
        assert np.allclose(min_norm_point(v), [3.0, 4.0])

    def test_origin_inside_hull(self):
        vectors = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        assert np.linalg.norm(min_norm_point(vectors)) < 1e-4

    def test_offset_segment(self):
        vectors = np.array([[1.0, 1.0], [-1.0, 1.0]])
        z = min_norm_point(vectors)
        assert np.allclose(z, [0.0, 1.0], atol=1e-4)


class TestDescentDirection:
    def test_single_worst_neighbor(self):
        offsets = np.array([[0.0, 1.0]])
        d = descent_direction(offsets)
        assert np.allclose(d, [0.0, -1.0], atol=1e-6)

    def test_surrounded_means_converged(self):
        offsets = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        assert descent_direction(offsets) is None

    def test_two_neighbors_bisected(self):
        offsets = np.array([[1.0, 0.0], [0.0, 1.0]])
        d = descent_direction(offsets)
        expected = -np.array([1.0, 1.0]) / np.sqrt(2)
        assert np.allclose(d, expected, atol=1e-4)

    def test_empty_offsets(self):
        assert descent_direction(np.zeros((0, 2))) is None


class TestWorstNeighbors:
    def test_finds_direction_of_increase(self):
        f = lambda x: float(x[0])  # increases along +x
        rng = np.random.default_rng(1)
        offsets, worst = find_worst_neighbors(f, np.zeros(2), 1.0, rng)
        assert worst == pytest.approx(1.0, abs=0.05)
        # worst neighbors concentrate near +x boundary
        mean_direction = offsets.mean(axis=0)
        assert mean_direction[0] > 0.5


class TestBNTMinimize:
    def test_convex_quadratic(self):
        """Robust minimum of ‖x‖² over Γ-balls is x* = 0."""
        f = lambda x: float(x @ x)
        result = bnt_minimize(f, np.array([3.0, -2.0]), gamma=0.5, seed=2)
        assert np.linalg.norm(result.x) < 0.35
        assert result.worst_case == pytest.approx((np.linalg.norm(result.x) + 0.5) ** 2, rel=0.3)

    def test_shifted_quadratic(self):
        target = np.array([1.0, 2.0])
        f = lambda x: float((x - target) @ (x - target))
        result = bnt_minimize(f, np.array([-2.0, -2.0]), gamma=0.4, seed=3)
        assert np.linalg.norm(result.x - target) < 0.4

    def test_asymmetric_valley_prefers_flat_side(self):
        """A robust optimum sits away from the steep wall (Figure 2's story:
        the nominal optimum at the cliff edge is not robust)."""

        def f(x):
            # valley at 0 with a steep wall on the right
            t = float(x[0])
            return t * t if t < 0 else 25.0 * t * t

        result = bnt_minimize(f, np.array([0.5]), gamma=0.5, seed=4)
        # the robust minimizer must move left of the nominal optimum 0
        assert result.x[0] < -0.05
        nominal_worst = max(f(np.array([0.5])), f(np.array([-0.5])))
        assert result.worst_case < nominal_worst

    def test_history_monotone_nonincreasing(self):
        f = lambda x: float(x @ x)
        result = bnt_minimize(f, np.array([2.0, 2.0]), gamma=0.3, seed=5)
        history = result.worst_case_history
        assert all(b <= a + 1e-9 for a, b in zip(history, history[1:]))

    def test_converged_flag_set_at_optimum(self):
        f = lambda x: float(x @ x)
        result = bnt_minimize(
            f, np.zeros(2), gamma=0.5, max_iterations=40, seed=6
        )
        assert result.converged
