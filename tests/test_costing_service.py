"""Tests for the unified cost-evaluation service.

The load-bearing guarantee is **bit-identical** cached-vs-uncached
evaluation: every float the service returns must be exactly the float the
underlying cost model would have produced, on all three substrates,
before and after cache warm-up, design changes, and explicit
invalidation.  The property-based tests below draw random workloads and
designs and assert exact equality, not closeness.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costing.service import (
    CostEvaluationService,
    design_fingerprint,
    query_fingerprint,
    workload_fingerprint,
)
from repro.designers.base import ColumnarAdapter, RowstoreAdapter, SamplesAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.optimizer import SamplesCostModel
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

SUBSTRATES = ("columnar", "rowstore", "samples")


@lru_cache(maxsize=1)
def _environment():
    """A small star schema plus a pool of distinct trace queries."""
    schema, roles = build_star_schema(
        fact_tables=2,
        fact_rows=200_000,
        fact_attributes=10,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = r1_profile(queries_per_day=6, topic_count=2, templates_per_topic=3)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=30)
    sqls = list(dict.fromkeys(q.sql for q in trace))[:14]
    assert len(sqls) >= 6
    return schema, sqls


@lru_cache(maxsize=None)
def _substrate(name: str):
    """(cost_model, adapter, sql pool, candidate structures) per engine.

    The cost model and candidates are shared across hypothesis examples —
    the models are deterministic, so sharing only speeds the tests up.
    """
    schema, sqls = _environment()
    if name == "columnar":
        model = ColumnarCostModel(schema)
        adapter = ColumnarAdapter(model)
        nominal = ColumnarNominalDesigner(adapter)
    elif name == "rowstore":
        model = RowstoreCostModel(schema)
        adapter = RowstoreAdapter(model)
        nominal = RowstoreNominalDesigner(adapter)
    else:
        model = SamplesCostModel(schema)
        adapter = SamplesAdapter(model)
        nominal = SamplesNominalDesigner(adapter)
    candidates = nominal.generate_candidates(Workload.from_sql(sqls))[:10]
    return model, adapter, sqls, candidates


def _workload(sqls: list[str], picks: list[int], weights: list[int]) -> Workload:
    return Workload(
        WorkloadQuery(sql=sqls[i % len(sqls)], frequency=float(w))
        for i, w in zip(picks, weights)
    )


def _design(adapter, candidates, mask: int):
    chosen = [c for i, c in enumerate(candidates) if mask & (1 << i)]
    return adapter.make_design(chosen)


def _assert_same_report(cached, uncached) -> None:
    assert cached.per_query_ms == uncached.per_query_ms  # exact, not approx
    assert cached.weights == uncached.weights


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    substrate=st.sampled_from(SUBSTRATES),
    picks=st.lists(st.integers(0, 13), min_size=1, max_size=8),
    weights=st.lists(st.integers(1, 9), min_size=8, max_size=8),
    mask=st.integers(0, 1023),
    second_mask=st.integers(0, 1023),
)
def test_cached_matches_uncached_exactly(
    substrate, picks, weights, mask, second_mask
):
    """Service results are bit-identical to the raw cost model — cold,
    warm, across a design change, and after explicit invalidation."""
    model, adapter, sqls, candidates = _substrate(substrate)
    service = CostEvaluationService(model)
    workload = _workload(sqls, picks, weights)
    design = _design(adapter, candidates, mask)

    cold = service.workload_cost(workload, design)
    _assert_same_report(cold, model.workload_cost(workload, design))
    warm = service.workload_cost(workload, design)
    _assert_same_report(warm, model.workload_cost(workload, design))

    # A different design must not reuse the first design's entries.
    changed = _design(adapter, candidates, second_mask)
    _assert_same_report(
        service.workload_cost(workload, changed),
        model.workload_cost(workload, changed),
    )

    # Explicit invalidation drops the entries; results stay exact.
    service.invalidate_design(design)
    _assert_same_report(
        service.workload_cost(workload, design),
        model.workload_cost(workload, design),
    )

    # Per-query costs are exact too.
    for query in workload:
        assert service.query_cost(query.sql, design) == model.query_cost(
            query.sql, design
        )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    mask=st.integers(0, 1023),
    neighborhoods=st.lists(
        st.lists(st.integers(0, 13), min_size=1, max_size=6),
        min_size=1,
        max_size=4,
    ),
)
def test_batched_neighborhood_matches_per_workload(substrate, mask, neighborhoods):
    """evaluate_neighborhood == one workload_cost call per neighbor."""
    model, adapter, sqls, candidates = _substrate(substrate)
    service = CostEvaluationService(model)
    design = _design(adapter, candidates, mask)
    workloads = [
        Workload.from_sql([sqls[i % len(sqls)] for i in picks])
        for picks in neighborhoods
    ]
    batched = service.evaluate_neighborhood([design], workloads)[0]
    assert len(batched) == len(workloads)
    for report, workload in zip(batched, workloads):
        _assert_same_report(report, model.workload_cost(workload, design))


class TestFingerprints:
    def test_query_fingerprint_stable_and_distinct(self):
        a = query_fingerprint("SELECT a FROM t")
        assert a == query_fingerprint("SELECT a FROM t")
        assert a != query_fingerprint("SELECT b FROM t")

    def test_design_fingerprint_is_content_based(self):
        _, adapter, _, candidates = _substrate("columnar")
        if len(candidates) < 2:
            pytest.skip("needs at least two candidate structures")
        one = adapter.make_design([candidates[0], candidates[1]])
        two = adapter.make_design([candidates[1], candidates[0]])
        assert design_fingerprint(one) == design_fingerprint(two)
        assert design_fingerprint(one) != design_fingerprint(
            adapter.make_design([candidates[0]])
        )
        assert design_fingerprint(adapter.empty_design()) != design_fingerprint(
            adapter.make_design([candidates[0]])
        )

    def test_workload_fingerprint_weight_sensitive(self):
        light = [WorkloadQuery(sql="SELECT a FROM t", frequency=1.0)]
        heavy = [WorkloadQuery(sql="SELECT a FROM t", frequency=2.0)]
        assert workload_fingerprint(light) != workload_fingerprint(heavy)
        assert workload_fingerprint(light) == workload_fingerprint(list(light))


class TestServiceMechanics:
    def test_cache_hits_and_raw_calls_counted(self):
        model, adapter, sqls, candidates = _substrate("columnar")
        service = CostEvaluationService(model)
        design = _design(adapter, candidates, 3)
        for _ in range(3):
            service.query_cost(sqls[0], design)
        assert service.stats.query_requests == 3
        assert service.stats.query_hits == 2
        assert service.stats.raw_model_calls == 1
        assert service.stats.hit_rate == pytest.approx(2 / 3)

    def test_dedup_counted_in_batched_evaluation(self):
        model, adapter, sqls, candidates = _substrate("columnar")
        service = CostEvaluationService(model)
        design = _design(adapter, candidates, 1)
        shared = Workload.from_sql([sqls[0], sqls[1]])
        service.evaluate_neighborhood([design], [shared, shared, shared])
        # 6 occurrences of 2 distinct queries -> 4 collapsed duplicates.
        assert service.stats.dedup_saved == 4
        assert service.stats.raw_model_calls == 2
        assert service.stats.dedup_ratio == pytest.approx(4 / 6)

    def test_lru_bound_is_enforced(self):
        model, adapter, sqls, candidates = _substrate("columnar")
        service = CostEvaluationService(model, max_query_entries=3)
        design = _design(adapter, candidates, 0)
        for sql in sqls[:6]:
            service.query_cost(sql, design)
        assert service.cached_query_entries == 3
        assert service.stats.evictions == 3

    def test_invalidate_design_only_touches_that_design(self):
        model, adapter, sqls, candidates = _substrate("columnar")
        service = CostEvaluationService(model)
        one = _design(adapter, candidates, 1)
        two = _design(adapter, candidates, 2)
        service.query_cost(sqls[0], one)
        service.query_cost(sqls[0], two)
        assert service.cached_query_entries == 2
        service.invalidate_design(one)
        assert service.cached_query_entries == 1
        before = service.stats.raw_model_calls
        service.query_cost(sqls[0], two)  # still cached
        assert service.stats.raw_model_calls == before

    def test_clear_resets_caches(self):
        model, adapter, sqls, candidates = _substrate("columnar")
        service = CostEvaluationService(model)
        design = _design(adapter, candidates, 1)
        service.workload_cost(Workload.from_sql(sqls[:3]), design)
        assert service.cached_query_entries > 0
        service.clear()
        assert service.cached_query_entries == 0
        assert service.cached_workload_entries == 0

    def test_invalid_parameters_rejected(self):
        model, _, _, _ = _substrate("columnar")
        with pytest.raises(ValueError):
            CostEvaluationService(model, max_query_entries=0)
        with pytest.raises(ValueError):
            CostEvaluationService(model, max_workers=0)

    def test_threaded_fill_matches_serial(self):
        model, adapter, sqls, candidates = _substrate("columnar")
        serial = CostEvaluationService(model)
        threaded = CostEvaluationService(model, max_workers=4)
        design = _design(adapter, candidates, 7)
        workloads = [Workload.from_sql(sqls[i : i + 4]) for i in range(0, 12, 4)]
        a = serial.evaluate_neighborhood([design], workloads)[0]
        b = threaded.evaluate_neighborhood([design], workloads)[0]
        for left, right in zip(a, b):
            _assert_same_report(left, right)

    def test_adapter_routes_through_service(self):
        _, adapter, sqls, candidates = _substrate("rowstore")
        design = _design(adapter, candidates, 1)
        before = adapter.costing.stats.query_requests
        adapter.query_cost(sqls[0], design)
        adapter.workload_cost(Workload.from_sql(sqls[:2]), design)
        assert adapter.costing.stats.query_requests > before
