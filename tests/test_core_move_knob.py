"""Tests for MoveWorkload (Algorithm 3) and the Γ knob helpers."""

import pytest

from repro.core.knob import drift_history, gamma_from_history
from repro.core.move import move_workload
from repro.workload.distance import WorkloadDistance
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload


def q(sql, freq=1.0):
    return WorkloadQuery(sql=sql, frequency=freq)


BASE = Workload([q("SELECT t.a FROM t", 3), q("SELECT t.b FROM t", 1)])
NEIGHBOR = Workload(
    [q("SELECT t.a FROM t", 3), q("SELECT t.b FROM t", 1), q("SELECT t.c FROM t", 4)]
)

COSTS = {
    "SELECT t.a FROM t": 10.0,
    "SELECT t.b FROM t": 100.0,
    "SELECT t.c FROM t": 1000.0,
}


class TestMoveWorkload:
    def test_contains_all_queries(self):
        moved = move_workload(BASE, [NEIGHBOR], COSTS.get, alpha=1.0)
        sqls = {query.sql for query in moved}
        assert sqls == set(COSTS)

    def test_base_weights_preserved_as_anchor(self):
        """Queries absent from all neighbors keep their base weight —
        the paper's 'never completely ignore the original workload'."""
        lonely = Workload([q("SELECT t.a FROM t", 2)])
        neighbor = Workload([q("SELECT t.c FROM t", 1)])
        moved = move_workload(lonely, [neighbor], COSTS.get, alpha=1.0)
        weights = {query.sql: query.frequency for query in moved}
        assert weights["SELECT t.a FROM t"] == pytest.approx(1.0)  # normalized base

    def test_expensive_neighbor_queries_weighted_up(self):
        moved = move_workload(BASE, [NEIGHBOR], COSTS.get, alpha=1.0)
        weights = {query.sql: query.frequency for query in moved}
        # t.c is both popular in the neighbor and expensive → heaviest.
        assert weights["SELECT t.c FROM t"] > weights["SELECT t.a FROM t"]

    def test_alpha_scales_the_tilt(self):
        small = move_workload(BASE, [NEIGHBOR], COSTS.get, alpha=0.1)
        large = move_workload(BASE, [NEIGHBOR], COSTS.get, alpha=10.0)

        def tilt(workload):
            weights = {query.sql: query.frequency for query in workload}
            return weights["SELECT t.c FROM t"] / weights["SELECT t.a FROM t"]

        assert tilt(large) > tilt(small)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            move_workload(BASE, [NEIGHBOR], COSTS.get, alpha=0.0)

    def test_neighbor_count_does_not_inflate_tilt(self):
        one = move_workload(BASE, [NEIGHBOR], COSTS.get, alpha=1.0)
        three = move_workload(BASE, [NEIGHBOR] * 3, COSTS.get, alpha=1.0)
        w_one = {x.sql: x.frequency for x in one}
        w_three = {x.sql: x.frequency for x in three}
        assert w_three["SELECT t.c FROM t"] == pytest.approx(
            w_one["SELECT t.c FROM t"]
        )

    def test_moved_workload_is_closer_to_neighbors(self):
        """The output contract of Algorithm 3: the merged workload is
        closer to the worst neighbors than the base is."""
        metric = WorkloadDistance(8)
        moved = move_workload(BASE, [NEIGHBOR], COSTS.get, alpha=1.0)
        assert metric(NEIGHBOR, moved) < metric(NEIGHBOR, BASE)


class TestKnob:
    def test_avg_and_max(self):
        history = [1.0, 2.0, 3.0]
        assert gamma_from_history(history, "avg") == pytest.approx(2.0)
        assert gamma_from_history(history, "max") == pytest.approx(3.0)

    def test_kmax(self):
        assert gamma_from_history([2.0], "kmax", k=1.5) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            gamma_from_history([2.0], "kmax", k=0.5)

    def test_forecast_follows_trend(self):
        rising = gamma_from_history([1.0, 2.0, 3.0, 4.0], "forecast")
        flat = gamma_from_history([2.5, 2.5, 2.5, 2.5], "forecast")
        assert rising > flat

    def test_forecast_never_negative(self):
        assert gamma_from_history([5.0, 3.0, 1.0, 0.1], "forecast") >= 0.0

    def test_empty_history(self):
        assert gamma_from_history([], "avg") == 0.0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            gamma_from_history([1.0], "median")

    def test_drift_history(self, tiny_star, tiny_windows):
        schema, _ = tiny_star
        metric = WorkloadDistance(schema.total_columns)
        history = drift_history(tiny_windows, metric)
        assert len(history) == len(tiny_windows) - 1
        assert all(d >= 0 for d in history)
