"""Unit tests for the synthetic data generator."""

import numpy as np

from repro.catalog.datagen import generate_column, generate_database, generate_table
from repro.catalog.schema import Column, ForeignKey, Schema, Table
from repro.catalog.types import ColumnType


class TestGenerateColumn:
    def test_int_values_within_ndv(self):
        rng = np.random.default_rng(0)
        column = Column("a", ColumnType.INT, ndv=10)
        values = generate_column(column, 1000, rng)
        assert values.min() >= 0
        assert values.max() < 10
        assert values.dtype == np.int64

    def test_float_values_have_jitter(self):
        rng = np.random.default_rng(0)
        column = Column("m", ColumnType.FLOAT, ndv=10)
        values = generate_column(column, 1000, rng)
        assert values.dtype == np.float64
        assert np.unique(values).size > 10  # jitter breaks ties

    def test_bool_column(self):
        rng = np.random.default_rng(0)
        values = generate_column(Column("f", ColumnType.BOOL), 100, rng)
        assert values.dtype == np.bool_

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(0)
        uniform = generate_column(Column("a", ColumnType.INT, ndv=100), 20_000, rng)
        skewed = generate_column(
            Column("a", ColumnType.INT, ndv=100, skew=1.2), 20_000, rng
        )
        top_uniform = np.mean(uniform == np.bincount(uniform).argmax())
        top_skewed = np.mean(skewed == np.bincount(skewed).argmax())
        assert top_skewed > top_uniform * 2

    def test_deterministic_given_seed(self):
        column = Column("a", ColumnType.INT, ndv=50)
        first = generate_column(column, 500, np.random.default_rng(7))
        second = generate_column(column, 500, np.random.default_rng(7))
        assert np.array_equal(first, second)


class TestGenerateDatabase:
    def make_schema(self) -> Schema:
        schema = Schema()
        schema.add_table(
            Table("dim", [Column("id", ColumnType.INT, ndv=100)], row_count=100)
        )
        schema.add_table(
            Table(
                "fact",
                [Column("id", ColumnType.INT, ndv=100), Column("m", ColumnType.FLOAT)],
                row_count=1000,
                foreign_keys=[ForeignKey("id", "dim", "id")],
            )
        )
        return schema

    def test_all_tables_generated(self, sales_schema):
        data = generate_database(sales_schema, seed=1)
        assert set(data) == set(sales_schema.tables)
        for name, table in sales_schema.tables.items():
            for column in table.columns:
                assert column.name in data[name]

    def test_scale_shrinks_rows(self, sales_schema):
        data = generate_database(sales_schema, seed=1, scale=0.1)
        assert data["sales"]["store"].shape[0] == 500

    def test_foreign_keys_reference_existing_values(self):
        schema = self.make_schema()
        data = generate_database(schema, seed=2)
        fact_ids = set(data["fact"]["id"].tolist())
        dim_ids = set(data["dim"]["id"].tolist())
        assert fact_ids <= dim_ids

    def test_deterministic(self, sales_schema):
        first = generate_database(sales_schema, seed=9)
        second = generate_database(sales_schema, seed=9)
        for table in first:
            for column in first[table]:
                assert np.array_equal(first[table][column], second[table][column])
