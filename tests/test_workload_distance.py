"""Distance-metric tests, including the paper's R1–R4 requirements as
property-based checks (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distance import (
    SWGO,
    LatencyAwareDistance,
    WorkloadDistance,
    delta_euclidean,
)
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

N_COLUMNS = 12
COLUMNS = [f"t.c{i}" for i in range(N_COLUMNS)]


def make_query(columns: list[str], freq: float = 1.0) -> WorkloadQuery:
    select = ", ".join(columns) if columns else "COUNT(*)"
    return WorkloadQuery(sql=f"SELECT {select} FROM t", frequency=freq)


# Random workloads over a small column universe.
workloads = st.lists(
    st.tuples(
        st.lists(st.sampled_from(COLUMNS), min_size=1, max_size=4, unique=True),
        st.floats(0.5, 10.0),
    ),
    min_size=1,
    max_size=6,
).map(lambda items: Workload([make_query(cols, freq) for cols, freq in items]))


@pytest.fixture
def distance() -> WorkloadDistance:
    return WorkloadDistance(N_COLUMNS)


class TestAxioms:
    @given(workloads)
    @settings(max_examples=60, deadline=None)
    def test_identity(self, w):
        assert WorkloadDistance(N_COLUMNS)(w, w) == pytest.approx(0.0, abs=1e-12)

    @given(workloads, workloads)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        metric = WorkloadDistance(N_COLUMNS)
        assert metric(a, b) == pytest.approx(metric(b, a))

    @given(workloads, workloads)
    @settings(max_examples=60, deadline=None)
    def test_non_negative(self, a, b):
        assert WorkloadDistance(N_COLUMNS)(a, b) >= 0.0

    def test_identical_vectors_zero_even_for_different_sql(self, distance):
        # Same templates, different literals → distance zero.
        a = Workload([WorkloadQuery("SELECT t.c1 FROM t WHERE t.c2 = 1")])
        b = Workload([WorkloadQuery("SELECT t.c1 FROM t WHERE t.c2 = 99")])
        assert distance(a, b) == pytest.approx(0.0, abs=1e-12)


class TestIntraQuerySimilarity:
    """Requirement R2: similar templates yield smaller distances."""

    def test_close_templates_closer_than_distant_ones(self, distance):
        base = Workload([make_query(["t.c0", "t.c1", "t.c2"])])
        near = Workload([make_query(["t.c0", "t.c1", "t.c3"])])  # 1 column differs
        far = Workload([make_query(["t.c7", "t.c8", "t.c9"])])  # all differ
        assert distance(base, near) < distance(base, far)

    def test_frequency_shift_scales_distance(self, distance):
        a = Workload([make_query(["t.c0"], 9), make_query(["t.c5"], 1)])
        b = Workload([make_query(["t.c0"], 5), make_query(["t.c5"], 5)])
        c = Workload([make_query(["t.c0"], 1), make_query(["t.c5"], 9)])
        assert distance(a, b) < distance(a, c)

    def test_normalization_by_total_columns(self):
        a = Workload([make_query(["t.c0"])])
        b = Workload([make_query(["t.c1"])])
        small_n = WorkloadDistance(N_COLUMNS)(a, b)
        large_n = WorkloadDistance(10 * N_COLUMNS)(a, b)
        assert large_n == pytest.approx(small_n / 10)


class TestFastPath:
    @given(workloads)
    @settings(max_examples=40, deadline=None)
    def test_disjoint_decomposition_matches_direct(self, base):
        metric = WorkloadDistance(N_COLUMNS)
        # A probe guaranteed template-disjoint: uses columns c10, c11 only.
        probe = Workload([make_query(["t.c10", "t.c11"])])
        base_keys = metric.template_keys(base)
        if frozenset({"t.c10", "t.c11"}) in base_keys:
            return  # not disjoint for this draw
        direct = metric(base, probe)
        decomposed = metric.disjoint_distance(base, probe)
        assert decomposed == pytest.approx(direct, rel=1e-9, abs=1e-12)

    def test_self_term_cached_per_object(self, distance):
        workload = Workload([make_query(["t.c0"])])
        assert distance.self_term(workload) == distance.self_term(workload)


class TestVariants:
    def test_separate_distinguishes_clause_roles(self):
        # Same union columns, different clause placement.
        a = Workload([WorkloadQuery("SELECT t.c0 FROM t WHERE t.c1 = 1")])
        b = Workload([WorkloadQuery("SELECT t.c1 FROM t WHERE t.c0 = 1")])
        union_metric = WorkloadDistance(N_COLUMNS, SWGO)
        separate_metric = WorkloadDistance(N_COLUMNS, "separate")
        assert union_metric(a, b) == pytest.approx(0.0, abs=1e-12)
        assert separate_metric(a, b) > 0.0

    def test_single_clause_restriction(self):
        a = Workload([WorkloadQuery("SELECT t.c0 FROM t WHERE t.c1 = 1")])
        b = Workload([WorkloadQuery("SELECT t.c0 FROM t WHERE t.c2 = 1")])
        select_only = WorkloadDistance(N_COLUMNS, ("select",))
        assert select_only(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_one_shot_helper(self):
        a = Workload([make_query(["t.c0"])])
        b = Workload([make_query(["t.c1"])])
        assert delta_euclidean(a, b, N_COLUMNS) == WorkloadDistance(N_COLUMNS)(a, b)


class TestLatencyAware:
    def make(self, omega: float) -> LatencyAwareDistance:
        return LatencyAwareDistance(
            WorkloadDistance(N_COLUMNS),
            baseline_cost=lambda w: w.total_weight * 100.0,
            omega=omega,
        )

    def test_omega_zero_degenerates_to_euclidean(self):
        metric = self.make(0.0)
        a = Workload([make_query(["t.c0"], 5)])
        b = Workload([make_query(["t.c1"], 1)])
        assert metric(a, b) == pytest.approx(WorkloadDistance(N_COLUMNS)(a, b))

    def test_latency_term_bounds(self):
        metric = self.make(1.0)
        a = Workload([make_query(["t.c0"], 10)])
        b = Workload([make_query(["t.c0"], 10)])
        assert metric.latency_term(a, b) == pytest.approx(0.0)
        c = Workload([make_query(["t.c0"], 1)])
        assert 0.0 < metric.latency_term(a, c) < 1.0

    def test_invalid_omega_rejected(self):
        with pytest.raises(ValueError):
            self.make(1.5)

    def test_blend(self):
        a = Workload([make_query(["t.c0"], 10)])
        b = Workload([make_query(["t.c1"], 5)])
        euclid = WorkloadDistance(N_COLUMNS)(a, b)
        metric = self.make(0.2)
        expected = 0.8 * euclid + 0.2 * metric.latency_term(a, b)
        assert metric(a, b) == pytest.approx(expected)


class TestBoundedCaches:
    def test_self_term_cache_is_bounded(self):
        from repro.obs import get_metrics

        metric = WorkloadDistance(N_COLUMNS)
        metric._self_terms.max_entries = 2
        before = get_metrics().counter("distance.self_term_evictions").value
        kept = [Workload([make_query([f"t.c{i}"])]) for i in range(5)]
        for workload in kept:
            metric.self_term(workload)
        assert len(metric._self_terms) <= 2
        evicted = get_metrics().counter("distance.self_term_evictions").value - before
        assert evicted == 3

    def test_self_term_cache_hit_returns_same_value(self):
        metric = WorkloadDistance(N_COLUMNS)
        workload = Workload([make_query(["t.c0", "t.c1"], 2.0)])
        first = metric.self_term(workload)
        assert metric.self_term(workload) == first
        assert len(metric._self_terms) == 1

    def test_cost_cache_is_bounded(self):
        from repro.obs import get_metrics

        calls: list[int] = []

        def baseline(workload):
            calls.append(1)
            return workload.total_weight * 100.0

        metric = LatencyAwareDistance(
            WorkloadDistance(N_COLUMNS), baseline_cost=baseline, omega=0.5
        )
        metric._cost_cache.max_entries = 2
        before = get_metrics().counter("distance.cost_cache_evictions").value
        kept = [Workload([make_query([f"t.c{i}"], i + 1.0)]) for i in range(4)]
        for workload in kept:
            metric._cost(workload)
        assert len(metric._cost_cache) <= 2
        assert len(calls) == 4
        # A cached workload is served without a new baseline call.
        metric._cost(kept[-1])
        assert len(calls) == 4
        evicted = get_metrics().counter("distance.cost_cache_evictions").value - before
        assert evicted == 2

    def test_cache_rejects_nonpositive_bound(self):
        from repro.workload.distance import _PerWorkloadCache

        with pytest.raises(ValueError):
            _PerWorkloadCache("x", max_entries=0)


class TestCrossProcessDeterminism:
    """Regression: δ summed the template-diff vector in raw set-union
    order, which follows per-process hash randomization — the same two
    workloads measured in two Python processes differed in the last ulp,
    so checkpoint run keys (docs/state.md) never matched across a real
    crash/resume cycle.  The diff loop now sorts templates canonically."""

    SCRIPT = (
        "from repro.workload.distance import WorkloadDistance\n"
        "from repro.workload.query import WorkloadQuery\n"
        "from repro.workload.workload import Workload\n"
        "cols = [f't.c{i}' for i in range(12)]\n"
        "def q(names, f):\n"
        "    return WorkloadQuery(\n"
        "        sql='SELECT ' + ', '.join(names) + ' FROM t', frequency=f\n"
        "    )\n"
        "a = Workload([q(cols[i : i + 3], 1.0 + i) for i in range(9)])\n"
        "b = Workload([q(cols[i : i + 2], 2.0 + i) for i in range(10)])\n"
        "print(repr(WorkloadDistance(12)(a, b)))\n"
    )

    def test_distance_identical_across_hash_seeds(self):
        import os
        import subprocess
        import sys

        outputs = set()
        for hash_seed in ("0", "1", "20260806"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1, f"δ varies with PYTHONHASHSEED: {outputs}"
