"""Direct tests for the shared query profiler."""

import pytest

from repro.catalog.statistics import TableStatistics
from repro.costing.profile import QueryProfiler, resolve_column
from repro.sql.ast import ColumnRef


@pytest.fixture
def profiler(sales_schema) -> QueryProfiler:
    statistics = {
        name: TableStatistics.declared(table)
        for name, table in sales_schema.tables.items()
    }
    return QueryProfiler(sales_schema, statistics)


class TestResolveColumn:
    def test_qualified(self, sales_schema):
        assert resolve_column(sales_schema, ColumnRef("store", "sales"), "sales") == (
            "sales",
            "store",
        )

    def test_bare_prefers_anchor(self, sales_schema):
        assert resolve_column(sales_schema, ColumnRef("store"), "sales") == (
            "sales",
            "store",
        )

    def test_bare_falls_back_to_unique_owner(self, sales_schema):
        assert resolve_column(sales_schema, ColumnRef("region"), "sales") == (
            "stores",
            "region",
        )

    def test_unknown_returns_none(self, sales_schema):
        assert resolve_column(sales_schema, ColumnRef("zzz"), "sales") is None
        assert resolve_column(sales_schema, ColumnRef("x", "nope"), "sales") is None


class TestProfiler:
    def test_aggregates_resolved(self, profiler):
        profile = profiler.profile(
            "SELECT COUNT(*), SUM(sales.amount), COUNT(DISTINCT sales.store) FROM sales"
        )
        specs = profile.aggregates
        assert specs[0].column is None and specs[0].func == "COUNT"
        assert specs[1].column == "amount"
        assert specs[2].distinct

    def test_select_columns_only_anchor(self, profiler):
        profile = profiler.profile(
            "SELECT sales.store, stores.region FROM sales "
            "JOIN stores ON sales.store = stores.store_id"
        )
        assert profile.select_columns == ("store",)
        assert "region" in profile.dimensions[0].needed_columns

    def test_select_star_needs_all_columns(self, profiler, sales_schema):
        profile = profiler.profile("SELECT * FROM sales")
        assert profile.anchor.needed_columns == set(
            sales_schema.table("sales").column_names
        )

    def test_row_bytes_vs_needed_bytes(self, profiler, sales_schema):
        profile = profiler.profile("SELECT sales.amount FROM sales")
        assert profile.anchor.needed_bytes == 8
        assert profile.anchor.row_bytes == sales_schema.table("sales").row_bytes
        assert profile.anchor.row_bytes > profile.anchor.needed_bytes

    def test_predicate_columns_property(self, profiler):
        profile = profiler.profile(
            "SELECT sales.amount FROM sales WHERE sales.store = 1 AND sales.day < 5"
        )
        assert profile.anchor.predicate_columns == {"store", "day"}

    def test_joins_to_unknown_tables_skipped(self, profiler):
        profile = profiler.profile(
            "SELECT sales.amount FROM sales JOIN ghost ON sales.store = ghost.id"
        )
        assert profile.dimensions == ()

    def test_limit_and_order(self, profiler):
        profile = profiler.profile(
            "SELECT sales.amount FROM sales ORDER BY sales.day LIMIT 5"
        )
        assert profile.limit == 5
        assert profile.order_by == ("day",)
