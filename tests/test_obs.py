"""Tests for the observability layer (:mod:`repro.obs`).

Three layers of coverage:

* unit — :class:`RunTracer` JSONL mechanics (seq ordering, round-trip,
  repr fallback, null tracer, active-tracer swapping) and the
  :class:`MetricsRegistry` instruments;
* integration — CliffGuard, the cost-evaluation service, and the
  execution backends emit the documented events when a tracer is active;
* equivalence — serial and pooled runs emit the same *logical* event
  sequence (timestamps and wall-time payloads excluded), the tracing
  analogue of the bit-identity guarantee in test_backend_equivalence.
"""

from __future__ import annotations

import io
import json
import types

import pytest

from repro.core.cliffguard import CliffGuard
from repro.costing.service import CostEvaluationService
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.reporting import format_metrics
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    RunTracer,
    get_metrics,
    set_tracer,
    trace_to,
    tracer,
)
from repro.parallel.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.partition import chunk_count
from repro.workload.distance import WorkloadDistance
from repro.workload.sampler import NeighborhoodSampler

#: Payload fields whose values are legitimately nondeterministic — every
#: other field must be identical across runs and backends.
TIMING_FIELDS = ("t", "seconds")


def parse(buffer: io.StringIO) -> list[dict]:
    """Parse a tracer sink back into event dicts (asserts valid JSONL)."""
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def logical(events: list[dict]) -> list[dict]:
    """Events with the timing fields stripped (the deterministic part)."""
    return [
        {k: v for k, v in e.items() if k not in TIMING_FIELDS} for e in events
    ]


@pytest.fixture
def capture():
    """Install a capturing tracer; yields a ``read()`` returning events."""
    buffer = io.StringIO()
    active = RunTracer(buffer, clock=lambda: 0.0)
    previous = set_tracer(active)
    try:
        yield lambda: parse(buffer)
    finally:
        set_tracer(previous)


class TestRunTracer:
    def test_round_trip_and_seq_ordering(self):
        buffer = io.StringIO()
        t = RunTracer(buffer, clock=lambda: 42.5)
        t.emit("first", index=0, tags=["a", "b"])
        t.emit("second", value=1.25)
        events = parse(buffer)
        assert [e["event"] for e in events] == ["first", "second"]
        assert [e["seq"] for e in events] == [0, 1]
        assert all(e["t"] == 42.5 for e in events)
        assert events[0]["tags"] == ["a", "b"]
        assert events[1]["value"] == 1.25
        assert t.events_emitted == 2

    def test_source_is_stamped_when_given(self):
        buffer = io.StringIO()
        RunTracer(buffer, clock=lambda: 0.0, source="unit").emit("ping")
        assert parse(buffer)[0]["source"] == "unit"

    def test_unserializable_payload_falls_back_to_repr(self):
        buffer = io.StringIO()
        RunTracer(buffer, clock=lambda: 0.0).emit("odd", payload=object())
        event = parse(buffer)[0]
        assert event["payload"].startswith("<object object")

    def test_open_appends_and_close_releases(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with RunTracer.open(path) as t:
            t.emit("one")
        with RunTracer.open(path) as t:
            t.emit("two")
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["one", "two"]
        # Each tracer numbers its own events; appending restarts seq.
        assert [e["seq"] for e in events] == [0, 0]

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("ignored", anything=1)
        NULL_TRACER.flush()
        NULL_TRACER.close()
        assert NULL_TRACER.events_emitted == 0


class TestActiveTracer:
    def test_default_active_tracer_is_null(self):
        assert tracer() is NULL_TRACER or tracer().enabled in (True, False)

    def test_set_tracer_swaps_and_restores(self):
        replacement = RunTracer(io.StringIO(), clock=lambda: 0.0)
        previous = set_tracer(replacement)
        try:
            assert tracer() is replacement
        finally:
            assert set_tracer(previous) is replacement
        assert tracer() is previous

    def test_set_tracer_none_resets_to_null(self):
        previous = set_tracer(None)
        try:
            assert tracer() is NULL_TRACER
        finally:
            set_tracer(previous)

    def test_trace_to_writes_and_restores(self, tmp_path):
        path = tmp_path / "run.jsonl"
        before = tracer()
        with trace_to(path, source="test") as active:
            assert tracer() is active
            tracer().emit("inside", step=1)
        assert tracer() is before
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events == [
            {"event": "inside", "seq": 0, "t": events[0]["t"], "source": "test", "step": 1}
        ]


class TestMetricsRegistry:
    def test_instruments_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == 2.5
        assert snap["h"] == {"count": 2, "total": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0}
        assert "c" in registry and len(registry) == 3

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="not a Gauge"):
            registry.gauge("x")

    def test_reset_preserves_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.counter("x") is counter
        assert registry.snapshot()["x"] == 1

    def test_samples_are_name_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(1.0)
        registry.counter("a").inc()
        registry.histogram("c").observe(2.0)
        samples = registry.samples()
        assert [s.name for s in samples] == ["a", "b", "c"]
        assert [s.kind for s in samples] == ["counter", "gauge", "histogram"]
        assert samples[2].value == "n=1 mean=2"

    def test_format_metrics_renders_table(self):
        registry = MetricsRegistry()
        assert "(no metrics recorded)" in format_metrics(registry)
        registry.counter("hits").inc(3)
        rendered = format_metrics(registry, title="Registry")
        assert "Registry" in rendered and "hits" in rendered and "3" in rendered

    def test_global_registry_is_a_singleton(self):
        assert get_metrics() is get_metrics()


# -- integration: the design loop ----------------------------------------------------


@pytest.fixture
def parts(tiny_star, tiny_trace, tiny_windows, columnar_adapter):
    schema, _ = tiny_star
    window = tiny_windows[1]
    distance = WorkloadDistance(schema.total_columns)
    pool = [q for q in tiny_trace if q.timestamp < window.span_days[0]]
    sampler = NeighborhoodSampler(
        distance, schema, pool=pool, seed=3, min_query_set=4, max_query_set=8
    )
    nominal = ColumnarNominalDesigner(columnar_adapter)
    return columnar_adapter, nominal, sampler, window


class TestCliffGuardEvents:
    def test_design_emits_event_stream(self, parts, capture):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.01, n_samples=3, max_iterations=2
        )
        robust.design(window)
        events = capture()
        names = [e["event"] for e in events]
        assert names[0] == "design_start"
        assert "design_finish" in names
        assert names.count("iteration") >= 1
        start = events[0]
        assert start["designer"] == "CliffGuard"
        assert start["gamma"] == 0.01
        # seq is the strictly increasing deterministic ordering key.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for alpha_event in (e for e in events if e["event"] == "alpha"):
            assert alpha_event["reason"] in ("success", "failure")
            assert alpha_event["value"] > 0

    def test_no_events_without_tracer(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.01, n_samples=2, max_iterations=1
        )
        assert tracer().enabled is False
        robust.design(window)  # must not raise, must not require a sink


# -- integration: the cost-evaluation service ----------------------------------------


class _StubModel:
    """Deterministic toy cost model (cost = len(sql))."""

    def query_cost(self, sql_or_profile, design) -> float:
        sql = sql_or_profile if isinstance(sql_or_profile, str) else sql_or_profile.sql
        return float(len(sql)) + float(len(list(design)))

    def workload_cost(self, queries, design):  # pragma: no cover - unused
        raise NotImplementedError


class TestServiceEvents:
    def test_lru_eviction_emits_cache_evict(self, capture):
        service = CostEvaluationService(
            _StubModel(), max_query_entries=2, max_workload_entries=2
        )
        design = ("structure-a",)
        for sql in ("SELECT 1", "SELECT 22", "SELECT 333"):
            service.query_cost(sql, design)
        evictions = [e for e in capture() if e["event"] == "cache_evict"]
        assert evictions and evictions[0]["reason"] == "lru"
        assert evictions[0]["cache"] == "query"

    def test_clear_emits_cache_evict_with_entry_count(self, capture):
        service = CostEvaluationService(_StubModel())
        service.query_cost("SELECT 1", ("s",))
        service.clear()
        events = [e for e in capture() if e["event"] == "cache_evict"]
        assert events[-1]["reason"] == "clear"
        assert events[-1]["entries"] >= 1

    def test_neighborhood_fill_emits_cache_fill(self, capture):
        service = CostEvaluationService(_StubModel())
        service.evaluate_neighborhood(
            [("s1",), ("s2",)], [["SELECT 1", "SELECT 22"], ["SELECT 22"]]
        )
        fills = [e for e in capture() if e["event"] == "cache_fill"]
        assert len(fills) == 2  # one per design
        assert all(f["backend"] == "inline" and f["misses"] == 2 for f in fills)

    def test_backend_fill_emits_chunk_events(self, capture):
        with ThreadBackend(jobs=2) as backend:
            service = CostEvaluationService(_StubModel(), backend=backend)
            service.evaluate_neighborhood(
                [("s1",)], [[f"SELECT {i}" for i in range(6)]]
            )
        events = capture()
        fill = next(e for e in events if e["event"] == "cache_fill")
        assert fill["backend"] == "thread"
        expected_chunks = chunk_count(6, jobs=2)
        assert fill["chunks"] == expected_chunks
        assert sum(e["event"] == "chunk_dispatch" for e in events) == expected_chunks
        assert sum(e["event"] == "chunk_complete" for e in events) == expected_chunks

    def test_publish_metrics_snapshots_stats(self):
        registry = MetricsRegistry()
        service = CostEvaluationService(_StubModel())
        service.query_cost("SELECT 1", ("s",))
        service.query_cost("SELECT 1", ("s",))
        service.publish_metrics(registry)
        snap = registry.snapshot()
        assert snap["costing.query_requests"] == 2
        assert snap["costing.query_hits"] == 1
        assert snap["costing.hit_rate"] == 0.5
        assert snap["costing.cached_query_entries"] == 1
        # Re-publishing mirrors the latest snapshot, never accumulates.
        service.publish_metrics(registry)
        assert registry.snapshot()["costing.query_requests"] == 2


# -- integration: the execution backends ---------------------------------------------


def _triple(task: int) -> int:
    """Module-level (picklable) worker for the process backend."""
    return task * 3


class TestBackendEvents:
    def test_serial_emits_interleaved_chunk_events(self, capture):
        with SerialBackend() as backend:
            assert backend.map(_triple, [1, 2]) == [3, 6]
        names = [(e["event"], e["index"]) for e in capture()]
        assert names == [
            ("chunk_dispatch", 0),
            ("chunk_complete", 0),
            ("chunk_dispatch", 1),
            ("chunk_complete", 1),
        ]

    def test_failed_task_emits_retry_then_complete(self, capture):
        attempts: list[int] = []

        def flaky(task: int) -> int:
            attempts.append(task)
            if task == 1 and attempts.count(1) == 1:
                raise RuntimeError("transient")
            return task * 3

        with ThreadBackend(jobs=2) as backend:
            assert backend.map(flaky, [0, 1, 2]) == [0, 3, 6]
        events = capture()
        retry = next(e for e in events if e["event"] == "chunk_retry")
        assert retry["index"] == 1 and "transient" in retry["error"]
        recovered = [
            e for e in events if e["event"] == "chunk_complete" and e.get("retried")
        ]
        assert [e["index"] for e in recovered] == [1]

    def test_disabled_tracing_emits_nothing(self):
        assert tracer().enabled is False
        with SerialBackend() as backend:
            assert backend.map(_triple, [1, 2, 3]) == [3, 6, 9]


class TestEventSequenceEquivalence:
    def _map_events(self, backend) -> list[dict]:
        buffer = io.StringIO()
        previous = set_tracer(RunTracer(buffer, clock=lambda: 0.0))
        try:
            with backend:
                assert backend.map(_triple, list(range(5))) == [0, 3, 6, 9, 12]
        finally:
            set_tracer(previous)
        return [
            {k: v for k, v in e.items() if k not in (*TIMING_FIELDS, "backend")}
            for e in parse(buffer)
        ]

    def test_thread_and_process_emit_identical_sequences(self):
        thread = self._map_events(ThreadBackend(jobs=2))
        process = self._map_events(ProcessBackend(jobs=2))
        assert thread == process

    def test_serial_and_pool_emit_same_logical_events(self):
        serial = self._map_events(SerialBackend())
        pooled = self._map_events(ThreadBackend(jobs=2))
        # Scheduling order differs (serial interleaves dispatch/complete),
        # but the multiset of logical events must match exactly.
        key = lambda e: (e["event"], e["index"], e["seq"])  # noqa: E731
        strip_seq = lambda e: {k: v for k, v in e.items() if k != "seq"}  # noqa: E731
        assert sorted(map(repr, map(strip_seq, serial))) == sorted(
            map(repr, map(strip_seq, pooled))
        )

    def test_design_loop_events_identical_serial_vs_process(
        self, parts, tiny_star, tiny_trace
    ):
        """The tracing analogue of backend bit-identity: the design-loop
        events (everything CliffGuard emits) must be byte-identical across
        backends modulo timestamps — workers carry the null tracer, so all
        events surface from the parent in deterministic order."""

        def run(backend) -> list[dict]:
            adapter, _, _, window = parts
            # A fresh sampler per run: the fixture sampler's RNG stream
            # would otherwise advance between runs and change the
            # neighborhoods (and thus the events) for the second backend.
            schema, _roles = tiny_star
            distance = WorkloadDistance(schema.total_columns)
            pool = [q for q in tiny_trace if q.timestamp < window.span_days[0]]
            sampler = NeighborhoodSampler(
                distance, schema, pool=pool, seed=3, min_query_set=4, max_query_set=8
            )
            costing = CostEvaluationService(adapter.cost_model, backend=backend)
            rebuilt = type(adapter)(
                adapter.cost_model, adapter.budget_bytes, costing=costing
            )
            nominal = ColumnarNominalDesigner(rebuilt)
            robust = CliffGuard(
                nominal, rebuilt, sampler, gamma=0.01, n_samples=2, max_iterations=1
            )
            buffer = io.StringIO()
            previous = set_tracer(RunTracer(buffer, clock=lambda: 0.0))
            try:
                robust.design(window)
            finally:
                set_tracer(previous)
            loop_events = (
                "design_start", "iteration", "move", "accept", "reject",
                "alpha", "design_finish",
            )
            # seq numbers the full stream, and the backends legitimately
            # interleave different chunk-event counts — drop it along with
            # the timing fields when comparing the filtered loop events.
            return [
                {k: v for k, v in e.items() if k != "seq"}
                for e in logical(parse(buffer))
                if e["event"] in loop_events
            ]

        serial = run(SerialBackend())
        with ProcessBackend(jobs=2) as pool:
            process = run(pool)
        assert serial == process


class TestBackendMetrics:
    def test_map_publishes_counters(self):
        registry = get_metrics()
        calls_before = registry.counter("parallel.map_calls").value
        tasks_before = registry.counter("parallel.tasks").value
        with SerialBackend() as backend:
            backend.map(_triple, [1, 2, 3])
        assert registry.counter("parallel.map_calls").value == calls_before + 1
        assert registry.counter("parallel.tasks").value == tasks_before + 3
        assert registry.histogram("parallel.map_seconds").count >= 1


class TestNumpyGuard:
    def test_missing_bitwise_count_raises_actionable_error(self):
        from repro.workload.distance import _require_bitwise_count

        fake = types.SimpleNamespace(__version__="1.26.4")
        with pytest.raises(ImportError, match="numpy >= 2.0"):
            _require_bitwise_count(fake)

    def test_real_numpy_passes(self):
        import numpy as np

        from repro.workload.distance import _require_bitwise_count

        _require_bitwise_count(np)
