"""Shared-memory batch fan-out: zero-copy round-trips and leak safety.

The contract of :mod:`repro.parallel.shm` is twofold: a batch attached
from a segment prices bit-identically to the in-process original, and no
``/dev/shm`` segment outlives its ``share_batch`` block — not on normal
return, not on worker crash, not on timeout, not on an exception raised
mid-block.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np
import pytest

from repro.costing.kernel import kernel_for
from repro.costing.service import CostEvaluationService
from repro.designers.base import ColumnarAdapter, RowstoreAdapter, SamplesAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.parallel import ProcessBackend
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    attach_batch,
    attached_batch,
    leaked_segments,
    pack_batch,
    share_batch,
)
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.design import StratifiedSample
from repro.samples.optimizer import SamplesCostModel
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

SUBSTRATES = ("columnar", "rowstore", "samples")


@lru_cache(maxsize=1)
def _environment():
    schema, roles = build_star_schema(
        fact_tables=2,
        fact_rows=200_000,
        fact_attributes=10,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = r1_profile(queries_per_day=6, topic_count=2, templates_per_topic=3)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=30)
    sqls = list(dict.fromkeys(q.sql for q in trace))[:14]
    assert len(sqls) >= 6
    return schema, sqls


@lru_cache(maxsize=None)
def _batch(name: str):
    """A bound kernel batch (queries × structures) per substrate."""
    schema, sqls = _environment()
    if name == "columnar":
        model = ColumnarCostModel(schema)
        nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    elif name == "rowstore":
        model = RowstoreCostModel(schema)
        nominal = RowstoreNominalDesigner(RowstoreAdapter(model))
    else:
        model = SamplesCostModel(schema)
        nominal = SamplesNominalDesigner(SamplesAdapter(model))
    candidates = nominal.generate_candidates(Workload.from_sql(sqls))[:8]
    profiles = [model.profile(sql) for sql in sqls]
    if name == "samples" and not candidates:
        used = list(dict.fromkeys(t.table for p in profiles for t in p.tables))
        candidates = [
            StratifiedSample(
                table=table,
                strata_columns=(schema.table(table).column_names[0],),
                fraction=0.05,
            )
            for table in used[:4]
        ]
    kernel = kernel_for(model)
    return model, kernel.bind(kernel.compile_queries(profiles), candidates)


# -- round-trip bit-identity -------------------------------------------------------


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_pack_attach_roundtrip_bit_identical(substrate):
    _, batch = _batch(substrate)
    reference = batch.design_costs()
    sliced = batch.take([0, 3, 5]).design_costs()
    with share_batch(batch) as handle:
        assert handle.query_count == batch.query_count
        with attached_batch(handle) as remote:
            np.testing.assert_array_equal(remote.design_costs(), reference)
            np.testing.assert_array_equal(
                remote.take([0, 3, 5]).design_costs(), sliced
            )
    assert leaked_segments() == []


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_attached_views_are_zero_copy(substrate):
    """Attached arrays are views into the segment, not copies."""
    _, batch = _batch(substrate)
    segment, handle = pack_batch(batch)
    try:
        remote, remote_segment = attach_batch(handle)
        field, _, _, _ = handle.arrays[0]
        array = getattr(remote, field)
        assert array.base is not None  # buffer-backed, not owning
        del remote, array
        remote_segment.close()
    finally:
        segment.close()
        segment.unlink()
    assert leaked_segments() == []


# -- process fan-out ---------------------------------------------------------------


def test_process_backend_shm_fanout_bit_identical():
    """Misses filled over ProcessBackend(jobs=2) through shared memory
    equal the serial fill float-for-float, and leave no segment behind."""
    schema, sqls = _environment()
    model = ColumnarCostModel(schema)
    nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    candidates = nominal.generate_candidates(Workload.from_sql(sqls))[:6]
    workload = Workload(
        WorkloadQuery(sql=sql, frequency=float(i + 1)) for i, sql in enumerate(sqls)
    )

    serial = ColumnarAdapter(model, costing=CostEvaluationService(model))
    backend = ProcessBackend(jobs=2)
    try:
        fanned = ColumnarAdapter(
            model, costing=CostEvaluationService(model, backend=backend)
        )
        design_structures = [candidates, candidates[:3]]
        for structures in design_structures:
            reference = serial.workload_cost(workload, serial.make_design(structures))
            parallel = fanned.workload_cost(workload, fanned.make_design(structures))
            assert parallel.per_query_ms == reference.per_query_ms
        assert fanned.costing.arena_stats.shm_fanouts >= 1
    finally:
        backend.shutdown()
    assert leaked_segments() == []


# -- fault injection: every exit path unlinks --------------------------------------


def test_share_batch_unlinks_on_exception():
    _, batch = _batch("columnar")
    with pytest.raises(RuntimeError, match="boom"):
        with share_batch(batch) as handle:
            assert handle.segment.startswith(SEGMENT_PREFIX)
            raise RuntimeError("boom")
    assert leaked_segments() == []


def _crash_worker(task):
    """Dies in the pool; succeeds on the parent's serial retry."""
    handle, parent_pid = task
    if os.getpid() != parent_pid:  # pragma: no cover - runs in the child
        os._exit(13)
    with attached_batch(handle) as batch:
        return batch.query_count


def _sleep_worker(task):
    """Exceeds the task timeout in the pool; fast on the serial retry."""
    handle, parent_pid = task
    if os.getpid() != parent_pid:  # pragma: no cover - runs in the child
        time.sleep(5)
    with attached_batch(handle) as batch:
        return batch.query_count


def test_share_batch_survives_worker_crash_without_leak():
    """A worker hard-exiting mid-map breaks the pool; the backend retries
    serially in the parent — where the segment must still be attachable —
    and ``share_batch`` unlinks on the way out."""
    _, batch = _batch("columnar")
    backend = ProcessBackend(jobs=2)
    try:
        with share_batch(batch) as handle:
            tasks = [(handle, os.getpid()), (handle, os.getpid())]
            assert backend.map(_crash_worker, tasks) == [batch.query_count] * 2
        assert backend.stats.retried >= 1
    finally:
        backend.shutdown()
    assert leaked_segments() == []


def test_share_batch_survives_timeout_without_leak():
    _, batch = _batch("columnar")
    backend = ProcessBackend(jobs=2, task_timeout=0.2)
    try:
        with share_batch(batch) as handle:
            tasks = [(handle, os.getpid())]
            assert backend.map(_sleep_worker, tasks) == [batch.query_count]
        assert backend.stats.timeouts >= 1
    finally:
        backend.shutdown()
    assert leaked_segments() == []


def test_attach_in_same_process_does_not_break_creator_unlink(capfd):
    """Attaching in the creating process must not double-unregister: the
    resource tracker would log KeyError noise and the segment would risk
    early unlinking."""
    _, batch = _batch("columnar")
    with share_batch(batch) as handle:
        with attached_batch(handle):
            pass
        # Segment must still exist for other attachers after one detach.
        with attached_batch(handle) as again:
            assert again.query_count == batch.query_count
    assert leaked_segments() == []
    captured = capfd.readouterr()
    assert "KeyError" not in captured.err
    assert "resource_tracker" not in captured.err
