"""Invariants of the columnar designer's candidate generation."""

import pytest

from repro.designers.columnar_nominal import (
    MAX_MERGED_WIDTH,
    MAX_SORT_DEPTH,
    ColumnarNominalDesigner,
)
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload


@pytest.fixture
def designer(columnar_adapter) -> ColumnarNominalDesigner:
    return ColumnarNominalDesigner(columnar_adapter)


class TestCandidateInvariants:
    def test_no_duplicates(self, designer, tiny_windows):
        candidates = designer.generate_candidates(tiny_windows[1])
        assert len(candidates) == len(set(candidates))

    def test_sort_depth_bounded(self, designer, tiny_windows):
        for candidate in designer.generate_candidates(tiny_windows[1]):
            assert len(candidate.sort_columns) <= MAX_SORT_DEPTH + 1

    def test_width_bounded(self, designer, tiny_windows):
        for candidate in designer.generate_candidates(tiny_windows[1]):
            assert len(candidate.columns) <= MAX_MERGED_WIDTH + MAX_SORT_DEPTH

    def test_no_super_projections(self, designer, tiny_windows, tiny_star):
        schema, _ = tiny_star
        for candidate in designer.generate_candidates(tiny_windows[1]):
            table = schema.table(candidate.table)
            assert len(candidate.columns) < len(table.columns)
            assert not candidate.is_super

    def test_every_filtered_query_gets_a_candidate(self, designer, columnar_adapter, tiny_windows):
        window = tiny_windows[1]
        candidates = designer.generate_candidates(window)
        for query in window.collapsed():
            try:
                profile = columnar_adapter.profile(query.sql)
            except ValueError:
                continue
            if not profile.anchor.predicate_columns:
                continue
            covering = [
                c
                for c in candidates
                if c.table == profile.anchor.table
                and c.covers(profile.anchor.needed_columns)
            ]
            assert covering, query.sql

    def test_duplicate_predicates_tolerated(self, designer, columnar_adapter, tiny_star):
        """Two predicates on one column must not produce invalid candidates
        (the regression that once broke CliffGuard's moved workloads)."""
        schema, roles = tiny_star
        fact = roles.facts[0].fact
        eq = roles.facts[0].eq_columns[0]
        measure = roles.facts[0].measures[0]
        sql = (
            f"SELECT SUM({fact}.{measure}) FROM {fact} "
            f"WHERE {fact}.{eq} = 1 AND {fact}.{eq} = 2"
        )
        candidates = designer.generate_candidates(Workload([WorkloadQuery(sql=sql)]))
        assert candidates  # and Projection validation did not raise

    def test_empty_workload_no_candidates(self, designer):
        assert designer.generate_candidates(Workload([])) == []
