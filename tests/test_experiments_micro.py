"""Micro-scale tests for the remaining experiment entry points."""

import pytest

from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    run_fig6,
    run_gamma_sweep,
    run_latency_metric_correlation,
    run_offline_time,
    run_sample_size_sweep,
)


@pytest.fixture(scope="module")
def context():
    scale = ExperimentScale(
        days=84,
        window_days=28,
        queries_per_day=6,
        n_samples=3,
        iterations=1,
        legacy_tables=5,
        max_transitions=1,
        skip_transitions=1,
    )
    return ExperimentContext(scale)


class TestGammaSweep:
    def test_zero_gamma_matches_nominal_branch(self, context):
        base = context.default_gamma("R1")
        sweep = run_gamma_sweep(context, "R1", gammas=[0.0, base])
        assert set(sweep) == {0.0, base}
        for avg, mx in sweep.values():
            assert 0 < avg <= mx


class TestOfflineTime:
    def test_rows_per_designer(self, context):
        rows = run_offline_time(
            context, which=["NoDesign", "ExistingDesigner", "CliffGuard"]
        )
        names = {r.designer for r in rows}
        assert names == {"NoDesign", "ExistingDesigner", "CliffGuard"}
        by_name = {r.designer: r for r in rows}
        assert by_name["NoDesign"].deployment_seconds == 0.0
        assert by_name["ExistingDesigner"].deployment_seconds > 0
        assert (
            by_name["CliffGuard"].design_seconds
            >= by_name["ExistingDesigner"].design_seconds
        )


class TestFig6Micro:
    def test_points_sorted_and_positive(self, context):
        points = run_fig6(context, n_probes=3, anchors=1, repeats=1)
        assert points == sorted(points)
        assert all(latency > 0 for _, latency in points)


class TestLatencyMetricCorrelation:
    def test_curves_per_omega(self, context):
        curves = run_latency_metric_correlation(
            context, omegas=(0.1, 0.2), n_probes=4
        )
        assert set(curves) == {0.1, 0.2}
        for points in curves.values():
            assert len(points) == 4
            assert all(ratio > 0 for _, ratio in points)
            # δ_latency distances are sorted ascending.
            xs = [d for d, _ in points]
            assert xs == sorted(xs)


class TestSampleSizeSweep:
    def test_each_size_reported(self, context):
        results = run_sample_size_sweep(context, sample_sizes=(2, 4))
        assert set(results) == {2, 4}
        for avg, mx in results.values():
            assert 0 < avg <= mx
