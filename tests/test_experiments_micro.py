"""Micro-scale tests for the remaining experiment entry points."""

import pytest

from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    run_fig6,
    run_gamma_sweep,
    run_latency_metric_correlation,
    run_offline_time,
    run_sample_size_sweep,
)


@pytest.fixture(scope="module")
def context():
    scale = ExperimentScale(
        days=84,
        window_days=28,
        queries_per_day=6,
        n_samples=3,
        iterations=1,
        legacy_tables=5,
        max_transitions=1,
        skip_transitions=1,
    )
    return ExperimentContext(scale)


class TestGammaSweep:
    def test_zero_gamma_matches_nominal_branch(self, context):
        base = context.default_gamma("R1")
        sweep = run_gamma_sweep(context, "R1", gammas=[0.0, base])
        assert set(sweep) == {0.0, base}
        for avg, mx in sweep.values():
            assert 0 < avg <= mx


class TestOfflineTime:
    def test_rows_per_designer(self, context):
        rows = run_offline_time(
            context, which=["NoDesign", "ExistingDesigner", "CliffGuard"]
        )
        names = {r.designer for r in rows}
        assert names == {"NoDesign", "ExistingDesigner", "CliffGuard"}
        by_name = {r.designer: r for r in rows}
        assert by_name["NoDesign"].deployment_seconds == 0.0
        assert by_name["ExistingDesigner"].deployment_seconds > 0
        assert (
            by_name["CliffGuard"].design_seconds
            >= by_name["ExistingDesigner"].design_seconds
        )


class TestFig6Micro:
    def test_points_sorted_and_positive(self, context):
        points = run_fig6(context, n_probes=3, anchors=1, repeats=1)
        assert points == sorted(points)
        assert all(latency > 0 for _, latency in points)


class TestLatencyMetricCorrelation:
    def test_curves_per_omega(self, context):
        curves = run_latency_metric_correlation(
            context, omegas=(0.1, 0.2), n_probes=4
        )
        assert set(curves) == {0.1, 0.2}
        for points in curves.values():
            assert len(points) == 4
            assert all(ratio > 0 for _, ratio in points)
            # δ_latency distances are sorted ascending.
            xs = [d for d, _ in points]
            assert xs == sorted(xs)


class TestSampleSizeSweep:
    def test_each_size_reported(self, context):
        results = run_sample_size_sweep(context, sample_sizes=(2, 4))
        assert set(results) == {2, 4}
        for avg, mx in results.values():
            assert 0 < avg <= mx


class TestExperimentResume:
    """Crash the experiment grids mid-run and resume; results must be
    identical to the uninterrupted run (see docs/state.md)."""

    @staticmethod
    def _replay_facts(result):
        """Everything deterministic about a ReplayResult: all WindowOutcome
        fields except wall-clock ``design_seconds``."""
        import dataclasses

        return {
            "workload": result.workload_name,
            "counts": result.evaluated_query_counts,
            "runs": {
                name: [
                    {
                        f.name: getattr(w, f.name)
                        for f in dataclasses.fields(w)
                        if f.name != "design_seconds"
                    }
                    for w in run.windows
                ]
                for name, run in result.runs.items()
            },
        }

    def test_gamma_sweep_resumes_identically(self, context, tmp_path):
        from repro.harness.experiments import run_gamma_sweep
        from repro.state import RunCheckpointer, SimulatedCrash

        base = context.default_gamma("R1")
        gammas = [0.0, base]
        baseline = run_gamma_sweep(context, "R1", gammas=gammas)
        path = tmp_path / "sweep.ckpt"
        crashing = RunCheckpointer(path, crash_after=1)
        with pytest.raises(SimulatedCrash):
            run_gamma_sweep(context, "R1", gammas=gammas, checkpointer=crashing)
        resumed = run_gamma_sweep(
            context,
            "R1",
            gammas=gammas,
            checkpointer=RunCheckpointer(path, resume=True),
        )
        assert resumed == baseline

    def test_designer_comparison_resumes_identically(self, context, tmp_path):
        from repro.harness.experiments import run_designer_comparison
        from repro.state import RunCheckpointer, SimulatedCrash

        which = ["NoDesign", "ExistingDesigner"]
        baseline = run_designer_comparison(context, "R1", which=which)
        path = tmp_path / "compare.ckpt"
        # The serial path checkpoints per window transition (through
        # replay); with max_transitions=1 the single write lands after
        # the only transition, so the crash leaves a finished snapshot.
        crashing = RunCheckpointer(path, crash_after=1)
        with pytest.raises(SimulatedCrash):
            run_designer_comparison(context, "R1", which=which, checkpointer=crashing)
        resumed = run_designer_comparison(
            context,
            "R1",
            which=which,
            checkpointer=RunCheckpointer(path, resume=True),
        )
        assert self._replay_facts(resumed) == self._replay_facts(baseline)

    def test_schedule_comparison_resumes_identically(self, context, tmp_path):
        from repro.harness.experiments import run_schedule_comparison
        from repro.state import RunCheckpointer, SimulatedCrash

        kwargs = dict(
            workload="R1",
            designers=("ExistingDesigner",),
            everies=(1, 2),
            iterations=1,
        )
        baseline = run_schedule_comparison(context, **kwargs)
        path = tmp_path / "schedule.ckpt"
        crashing = RunCheckpointer(path, crash_after=1)
        with pytest.raises(SimulatedCrash):
            run_schedule_comparison(context, checkpointer=crashing, **kwargs)
        resumed = run_schedule_comparison(
            context,
            checkpointer=RunCheckpointer(path, resume=True),
            **kwargs,
        )
        # ScheduleOutcome carries no wall-clock fields: exact equality.
        assert resumed == baseline
