"""Tests for result export helpers."""

import csv
import io
import json

import pytest

from repro.harness.export import (
    replay_to_csv,
    replay_to_json,
    replay_to_rows,
    series_to_csv,
    table_to_csv,
)
from repro.harness.replay import DesignerRun, ReplayResult, WindowOutcome


@pytest.fixture
def result() -> ReplayResult:
    r = ReplayResult(workload_name="R1")
    r.runs["A"] = DesignerRun(
        name="A",
        windows=[
            WindowOutcome(0, 10.0, 100.0, 1.0, 1000, 3),
            WindowOutcome(1, 20.0, 200.0, 2.0, 2000, 4),
        ],
    )
    r.runs["B"] = DesignerRun(
        name="B", windows=[WindowOutcome(0, 5.0, 50.0, 0.5, 500, 1)]
    )
    return r


class TestReplayExport:
    def test_rows_flattening(self, result):
        rows = replay_to_rows(result)
        assert len(rows) == 3
        assert {r["designer"] for r in rows} == {"A", "B"}
        assert rows[0]["workload"] == "R1"

    def test_csv_round_trips(self, result):
        text = replay_to_csv(result)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 3
        assert float(parsed[0]["average_ms"]) == 10.0

    def test_csv_empty_result(self):
        assert replay_to_csv(ReplayResult(workload_name="x")) == ""

    def test_json_contains_means(self, result):
        payload = json.loads(replay_to_json(result))
        assert payload["workload"] == "R1"
        assert payload["designers"]["A"]["mean_average_ms"] == pytest.approx(15.0)
        assert len(payload["designers"]["A"]["windows"]) == 2

    def test_json_compact_mode(self, result):
        text = replay_to_json(result, indent=None)
        assert "\n" not in text


class TestGenericExport:
    def test_series(self):
        text = series_to_csv("gamma", "latency", [(0.0, 1.5), (0.1, 2.5)])
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["gamma", "latency"]
        assert parsed[2] == ["0.1", "2.5"]

    def test_table(self):
        text = table_to_csv(["a", "b"], [[1, 2], [3, 4]])
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed == [["a", "b"], ["1", "2"], ["3", "4"]]
