"""Robustness fuzzing for the SQL front end.

The designers feed arbitrary historical query text through the parser; it
must fail *predictably* (ValueError subclasses), never with unexpected
exception types, hangs, or crashes.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sql.ast import ColumnRef, column_of
from repro.sql.lexer import LexError, tokenize
from repro.sql.parser import ParseError, parse


class TestFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        try:
            parse(text)
        except (ParseError, LexError, ValueError):
            pass  # the contract: malformed input raises ValueError family

    @given(
        st.lists(
            st.sampled_from(
                ["SELECT", "FROM", "WHERE", "a", "t", ",", "(", ")", "*",
                 "=", "5", "'x'", "AND", "GROUP", "BY", "ORDER", "LIMIT"]
            ),
            max_size=20,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes_unexpectedly(self, tokens):
        try:
            parse(" ".join(tokens))
        except (ParseError, LexError, ValueError):
            pass

    @given(st.text(alphabet="abc_.0123456789'% ()=<>,*", max_size=60))
    @settings(max_examples=300, deadline=None)
    def test_lexer_total_on_charset(self, text):
        try:
            tokenize(text)
        except LexError:
            pass


class TestColumnOf:
    def test_bare(self):
        assert column_of("a") == ColumnRef("a")

    def test_qualified(self):
        assert column_of("t.a") == ColumnRef("a", "t")
