"""Tests for the re-design scheduling extension."""

import pytest

from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.scheduler import (
    DriftTriggeredPolicy,
    PeriodicPolicy,
    scheduled_replay,
)
from repro.workload.distance import WorkloadDistance


class TestPolicies:
    def test_periodic_every_window(self, tiny_windows):
        policy = PeriodicPolicy(every=1)
        assert policy.should_redesign(0, None, tiny_windows[0])
        assert policy.should_redesign(1, tiny_windows[0], tiny_windows[1])

    def test_periodic_every_second_window(self, tiny_windows):
        policy = PeriodicPolicy(every=2)
        assert policy.should_redesign(0, None, tiny_windows[0])  # first design
        assert policy.should_redesign(2, tiny_windows[0], tiny_windows[1])
        assert not policy.should_redesign(1, tiny_windows[0], tiny_windows[1])

    def test_periodic_rejects_zero(self):
        with pytest.raises(ValueError):
            PeriodicPolicy(every=0)

    def test_drift_triggered(self, tiny_star, tiny_windows):
        schema, _ = tiny_star
        distance = WorkloadDistance(schema.total_columns)
        drift = distance(tiny_windows[0], tiny_windows[1])
        eager = DriftTriggeredPolicy(distance, threshold=drift * 0.5)
        lazy = DriftTriggeredPolicy(distance, threshold=drift * 100)
        assert eager.should_redesign(1, tiny_windows[0], tiny_windows[1])
        assert not lazy.should_redesign(1, tiny_windows[0], tiny_windows[1])

    def test_drift_threshold_validation(self, tiny_star):
        schema, _ = tiny_star
        distance = WorkloadDistance(schema.total_columns)
        with pytest.raises(ValueError):
            DriftTriggeredPolicy(distance, threshold=-1.0)


class TestScheduledReplay:
    def test_monthly_redesign_matches_window_count(
        self, columnar_adapter, tiny_windows
    ):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        outcome = scheduled_replay(
            tiny_windows, nominal, columnar_adapter, PeriodicPolicy(every=1)
        )
        assert outcome.redesign_count == len(tiny_windows) - 1
        assert len(outcome.per_window_avg_ms) == len(tiny_windows) - 1
        assert outcome.total_deployment_seconds > 0

    def test_fewer_redesigns_cost_less_deployment(
        self, columnar_adapter, tiny_windows
    ):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        monthly = scheduled_replay(
            tiny_windows, nominal, columnar_adapter, PeriodicPolicy(every=1)
        )
        rare = scheduled_replay(
            tiny_windows, nominal, columnar_adapter, PeriodicPolicy(every=3)
        )
        assert rare.redesign_count < monthly.redesign_count
        assert rare.total_deployment_seconds < monthly.total_deployment_seconds
        # …but the stale designs serve later windows worse (or equal).
        assert rare.mean_average_ms >= monthly.mean_average_ms * 0.95

    def test_before_design_hook(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        calls = []
        scheduled_replay(
            tiny_windows,
            nominal,
            columnar_adapter,
            PeriodicPolicy(every=2),
            before_design=calls.append,
        )
        assert calls and calls[0] == 0


class TestPolicyStateRegression:
    def test_periodic_anchors_on_last_redesign_not_window_zero(self, tiny_windows):
        """Regression: the old ``window_index % every`` rule was anchored at
        window 0, so a first design at a late window (e.g. after empty
        leading windows that scheduled_replay skips without consulting the
        policy) silently shortened the first period."""
        window = tiny_windows[0]
        policy = PeriodicPolicy(every=4)
        assert policy.should_redesign(3, None, window)  # first consult: window 3
        # The %-rule would have fired here (4 % 4 == 0) after one window.
        assert not policy.should_redesign(4, window, window)
        assert not policy.should_redesign(6, window, window)
        assert policy.should_redesign(7, window, window)  # a full period later

    def test_periodic_reset_forgets_the_anchor(self, tiny_windows):
        window = tiny_windows[0]
        policy = PeriodicPolicy(every=3)
        assert policy.should_redesign(0, None, window)
        assert not policy.should_redesign(1, window, window)
        policy.reset()
        # After reset the policy behaves like a fresh instance.
        assert policy.should_redesign(5, window, window)
        assert not policy.should_redesign(6, window, window)

    def test_drift_triggers_do_not_accumulate_across_replays(
        self, tiny_star, columnar_adapter, tiny_windows
    ):
        """Regression: ``DriftTriggeredPolicy.triggers`` grew across
        ``scheduled_replay`` calls, mixing window indices from different
        runs.  The replay now resets the policy and returns this run's
        triggers on the outcome."""
        schema, _ = tiny_star
        distance = WorkloadDistance(schema.total_columns)
        drift = distance(tiny_windows[0], tiny_windows[1])
        policy = DriftTriggeredPolicy(distance, threshold=drift * 0.5)
        nominal = ColumnarNominalDesigner(columnar_adapter)
        first = scheduled_replay(tiny_windows, nominal, columnar_adapter, policy)
        second = scheduled_replay(tiny_windows, nominal, columnar_adapter, policy)
        # The eager threshold fires at least once per replay …
        assert first.drift_triggers
        # … identical replays must report identical triggers …
        assert first.drift_triggers == second.drift_triggers
        # … and the policy's own log holds only the latest run's triggers.
        assert policy.triggers == second.drift_triggers
        assert first.redesign_windows == second.redesign_windows


class TestEvaluationWindowsValidation:
    def test_empty_evaluation_windows_rejected(self, columnar_adapter, tiny_windows):
        """Regression: the old ``evaluation_windows or windows`` fallback
        treated an (accidental) empty list as "no filter" and silently
        evaluated on the raw windows instead of erroring."""
        nominal = ColumnarNominalDesigner(columnar_adapter)
        with pytest.raises(ValueError, match="one-to-one"):
            scheduled_replay(
                tiny_windows,
                nominal,
                columnar_adapter,
                PeriodicPolicy(every=1),
                evaluation_windows=[],
            )

    def test_mismatched_length_rejected(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        with pytest.raises(ValueError, match="one-to-one"):
            scheduled_replay(
                tiny_windows,
                nominal,
                columnar_adapter,
                PeriodicPolicy(every=1),
                evaluation_windows=tiny_windows[:-1],
            )

    def test_matching_evaluation_windows_accepted(
        self, columnar_adapter, tiny_windows
    ):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        plain = scheduled_replay(
            tiny_windows, nominal, columnar_adapter, PeriodicPolicy(every=1)
        )
        explicit = scheduled_replay(
            tiny_windows,
            nominal,
            columnar_adapter,
            PeriodicPolicy(every=1),
            evaluation_windows=list(tiny_windows),
        )
        assert explicit.per_window_avg_ms == plain.per_window_avg_ms
