"""Tests for the re-design scheduling extension."""

import pytest

from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.scheduler import (
    DriftTriggeredPolicy,
    PeriodicPolicy,
    scheduled_replay,
)
from repro.workload.distance import WorkloadDistance


class TestPolicies:
    def test_periodic_every_window(self, tiny_windows):
        policy = PeriodicPolicy(every=1)
        assert policy.should_redesign(0, None, tiny_windows[0])
        assert policy.should_redesign(1, tiny_windows[0], tiny_windows[1])

    def test_periodic_every_second_window(self, tiny_windows):
        policy = PeriodicPolicy(every=2)
        assert policy.should_redesign(0, None, tiny_windows[0])  # first design
        assert policy.should_redesign(2, tiny_windows[0], tiny_windows[1])
        assert not policy.should_redesign(1, tiny_windows[0], tiny_windows[1])

    def test_periodic_rejects_zero(self):
        with pytest.raises(ValueError):
            PeriodicPolicy(every=0)

    def test_drift_triggered(self, tiny_star, tiny_windows):
        schema, _ = tiny_star
        distance = WorkloadDistance(schema.total_columns)
        drift = distance(tiny_windows[0], tiny_windows[1])
        eager = DriftTriggeredPolicy(distance, threshold=drift * 0.5)
        lazy = DriftTriggeredPolicy(distance, threshold=drift * 100)
        assert eager.should_redesign(1, tiny_windows[0], tiny_windows[1])
        assert not lazy.should_redesign(1, tiny_windows[0], tiny_windows[1])

    def test_drift_threshold_validation(self, tiny_star):
        schema, _ = tiny_star
        distance = WorkloadDistance(schema.total_columns)
        with pytest.raises(ValueError):
            DriftTriggeredPolicy(distance, threshold=-1.0)


class TestScheduledReplay:
    def test_monthly_redesign_matches_window_count(
        self, columnar_adapter, tiny_windows
    ):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        outcome = scheduled_replay(
            tiny_windows, nominal, columnar_adapter, PeriodicPolicy(every=1)
        )
        assert outcome.redesign_count == len(tiny_windows) - 1
        assert len(outcome.per_window_avg_ms) == len(tiny_windows) - 1
        assert outcome.total_deployment_seconds > 0

    def test_fewer_redesigns_cost_less_deployment(
        self, columnar_adapter, tiny_windows
    ):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        monthly = scheduled_replay(
            tiny_windows, nominal, columnar_adapter, PeriodicPolicy(every=1)
        )
        rare = scheduled_replay(
            tiny_windows, nominal, columnar_adapter, PeriodicPolicy(every=3)
        )
        assert rare.redesign_count < monthly.redesign_count
        assert rare.total_deployment_seconds < monthly.total_deployment_seconds
        # …but the stale designs serve later windows worse (or equal).
        assert rare.mean_average_ms >= monthly.mean_average_ms * 0.95

    def test_before_design_hook(self, columnar_adapter, tiny_windows):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        calls = []
        scheduled_replay(
            tiny_windows,
            nominal,
            columnar_adapter,
            PeriodicPolicy(every=2),
            before_design=calls.append,
        )
        assert calls and calls[0] == 0
