"""Tests for the CliffGuard designer (Algorithm 2)."""

import pytest

from repro.core.cliffguard import CliffGuard
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.workload.distance import WorkloadDistance
from repro.workload.sampler import NeighborhoodSampler
from repro.workload.workload import Workload


@pytest.fixture
def parts(tiny_star, tiny_trace, tiny_windows, columnar_adapter):
    schema, _ = tiny_star
    window = tiny_windows[1]
    distance = WorkloadDistance(schema.total_columns)
    pool = [q for q in tiny_trace if q.timestamp < window.span_days[0]]
    sampler = NeighborhoodSampler(
        distance, schema, pool=pool, seed=3, min_query_set=4, max_query_set=8
    )
    nominal = ColumnarNominalDesigner(columnar_adapter)
    return columnar_adapter, nominal, sampler, window


class TestParameters:
    def test_invalid_parameters_rejected(self, parts):
        adapter, nominal, sampler, _ = parts
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=-1.0)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, worst_fraction=0.0)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, lambda_success=0.9)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, lambda_failure=1.5)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, n_samples=0)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, min_worst=0)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, initial_alpha=0.0)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, initial_alpha=-2.0)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, max_iterations=-1)
        with pytest.raises(ValueError):
            CliffGuard(nominal, adapter, sampler, gamma=0.1, patience=0)

    def test_worst_neighbors_clamped_to_neighborhood(self, parts):
        """min_worst beyond the sample count selects the whole neighborhood
        (previously an oversized slice silently degraded to the same thing,
        hiding the misconfiguration from any later stricter selection)."""
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=2, min_worst=50
        )
        neighborhood = [window, window, window]
        worst = robust._worst_neighbors(neighborhood, [3.0, 1.0, 2.0])
        assert len(worst) == len(neighborhood)


class TestDegenerateCases:
    def test_gamma_zero_equals_nominal(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(nominal, adapter, sampler, gamma=0.0)
        assert robust.design(window) == nominal.design(window)

    def test_zero_iterations_equals_nominal(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(nominal, adapter, sampler, gamma=0.01, max_iterations=0)
        assert robust.design(window) == nominal.design(window)

    def test_empty_workload(self, parts):
        adapter, nominal, sampler, _ = parts
        robust = CliffGuard(nominal, adapter, sampler, gamma=0.01)
        assert len(robust.design(Workload([]))) == 0


class TestAlgorithm:
    def test_design_within_budget(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=4, max_iterations=3
        )
        design = robust.design(window)
        assert adapter.design_price(design) <= adapter.budget_bytes
        assert len(design) > 0

    def test_worst_case_history_never_increases(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=4, max_iterations=4
        )
        robust.design(window)
        history = robust.last_report.worst_case_history
        assert all(b <= a + 1e-9 for a, b in zip(history, history[1:]))

    def test_designer_calls_counted(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=4, max_iterations=3
        )
        robust.design(window)
        report = robust.last_report
        assert report.designer_calls == 1 + report.iterations

    def test_report_records_cost_calls_and_final_alpha(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=4, max_iterations=3
        )
        robust.design(window)
        report = robust.last_report
        assert report.query_cost_calls > 0
        assert report.raw_cost_model_calls > 0
        assert report.raw_cost_model_calls <= report.query_cost_calls
        # final α is the last alpha_history entry scaled by its outcome.
        assert report.final_alpha > 0
        last = report.alpha_history[-1]
        assert report.final_alpha == pytest.approx(last * 5.0) or (
            report.final_alpha == pytest.approx(last * 0.5)
        )

    def test_neighborhood_evaluation_hits_cache_across_iterations(self, parts):
        """Re-evaluating the same neighborhood under a revisited design
        must be served by the evaluation service, not the cost model."""
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=4, max_iterations=3
        )
        robust.design(window)
        report = robust.last_report
        assert report.cache_hits > 0

    def test_alpha_adapts_on_success_and_failure(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal,
            adapter,
            sampler,
            gamma=0.005,
            n_samples=4,
            max_iterations=4,
            lambda_success=5.0,
            lambda_failure=0.5,
        )
        robust.design(window)
        report = robust.last_report
        alphas = report.alpha_history
        # every consecutive pair differs by exactly ×5 or ×0.5
        for a, b in zip(alphas, alphas[1:]):
            assert b == pytest.approx(a * 5.0) or b == pytest.approx(a * 0.5)

    def test_patience_stops_early(self, parts):
        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal,
            adapter,
            sampler,
            gamma=1e-9,  # neighborhood ≈ base: no move can improve
            n_samples=2,
            max_iterations=10,
            patience=1,
        )
        robust.design(window)
        assert robust.last_report.iterations <= 3

    def test_robust_design_no_worse_on_sampled_worst_case(self, parts):
        """The defining guarantee: CliffGuard's output is at least as good
        as the nominal design on the sampled worst case."""
        adapter, nominal, sampler, window = parts
        gamma = 0.005
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=gamma, n_samples=4, max_iterations=3
        )
        robust_design = robust.design(window)
        nominal_design = nominal.design(window)
        neighborhood = [window] + sampler.sample(window, gamma, 4)
        worst = lambda design: max(
            adapter.workload_cost(w, design).average_ms for w in neighborhood
        )
        assert worst(robust_design) <= worst(nominal_design) * 1.05


class TestTraceIdentity:
    def test_design_finish_reports_instance_name(self, parts):
        """Regression: ``design_finish`` hard-coded the class attribute
        ``CliffGuard.name``, so a renamed instance (the Γ-sweep benches
        label variants like "CliffGuard(2Γ)") emitted start/iteration
        events under its own name but finished under the generic one."""
        import io
        import json

        from repro.obs import RunTracer, set_tracer

        adapter, nominal, sampler, window = parts
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=3, max_iterations=1
        )
        robust.name = "CliffGuard[renamed]"
        buffer = io.StringIO()
        previous = set_tracer(RunTracer(buffer, clock=lambda: 0.0))
        try:
            robust.design(window)
        finally:
            set_tracer(previous)
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        finish = [e for e in events if e["event"] == "design_finish"]
        assert len(finish) == 1
        assert finish[0]["designer"] == "CliffGuard[renamed]"
        start = [e for e in events if e["event"] == "design_start"]
        assert start[0]["designer"] == finish[0]["designer"]
