"""Unit and property tests for statistics and selectivity estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, Table
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.catalog.types import ColumnType
from repro.sql.parser import parse


def pred_of(sql_where: str):
    """Parse a single predicate from a WHERE fragment."""
    return parse(f"SELECT a FROM t WHERE {sql_where}").where[0]


@pytest.fixture
def stats() -> TableStatistics:
    table = Table(
        "t",
        [
            Column("a", ColumnType.INT, ndv=100),
            Column("day", ColumnType.DATE, ndv=365),
            Column("flag", ColumnType.BOOL),
            Column("name", ColumnType.STRING, ndv=10),
        ],
        row_count=10_000,
    )
    return TableStatistics.declared(table)


class TestDeclaredStatistics:
    def test_ndv_capped_by_rows(self):
        column = Column("a", ColumnType.INT, ndv=10**9)
        stats = ColumnStatistics.declared(column, row_count=500)
        assert stats.ndv == 500

    def test_bool_ndv_is_two(self):
        column = Column("f", ColumnType.BOOL)
        assert ColumnStatistics.declared(column, 1000).ndv == 2


class TestMeasuredStatistics:
    def test_matches_actual_data(self):
        values = np.array([1, 1, 2, 3, 3, 3, 10], dtype=np.float64)
        stats = ColumnStatistics.measured(values)
        assert stats.ndv == 4
        assert stats.min_value == 1.0
        assert stats.max_value == 10.0

    def test_histogram_mass_normalized(self):
        rng = np.random.default_rng(0)
        stats = ColumnStatistics.measured(rng.uniform(0, 100, size=5000))
        assert stats.histogram is not None
        assert stats.histogram.sum() == pytest.approx(1.0)

    def test_empty_column(self):
        stats = ColumnStatistics.measured(np.array([], dtype=np.float64))
        assert stats.ndv == 1

    @given(st.lists(st.integers(0, 50), min_size=30, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_range_fraction_tracks_empirical_fraction(self, values):
        data = np.array(values, dtype=np.float64)
        if np.unique(data).size < 5:
            return  # degenerate distributions break equi-width bins
        stats = ColumnStatistics.measured(data)
        lo, hi = 10.0, 30.0
        estimated = stats.range_fraction(lo, hi)
        actual = np.mean((data >= lo) & (data <= hi))
        # Histogram estimates are approximate: values sitting exactly on a
        # bin edge can shift by one bin's worth of mass either way.
        assert abs(estimated - actual) <= 0.40


class TestSelectivity:
    def test_equality(self, stats):
        assert stats.predicate_selectivity(pred_of("a = 5")) == pytest.approx(0.01)

    def test_inequality_complements_equality(self, stats):
        eq = stats.predicate_selectivity(pred_of("a = 5"))
        ne = stats.predicate_selectivity(pred_of("a != 5"))
        assert eq + ne == pytest.approx(1.0)

    def test_range_fraction_of_domain(self, stats):
        sel = stats.predicate_selectivity(pred_of("day BETWEEN 0 AND 36"))
        assert 0.05 <= sel <= 0.15

    def test_open_range(self, stats):
        sel = stats.predicate_selectivity(pred_of("day < 182"))
        assert 0.4 <= sel <= 0.6

    def test_in_list_scales_with_size(self, stats):
        one = stats.predicate_selectivity(pred_of("a IN (1)"))
        three = stats.predicate_selectivity(pred_of("a IN (1, 2, 3)"))
        assert three == pytest.approx(3 * one)

    def test_in_list_capped_at_one(self, stats):
        values = ", ".join(str(i) for i in range(500))
        sel = stats.predicate_selectivity(pred_of(f"a IN ({values})"))
        assert sel == 1.0

    def test_unknown_column_is_conservative(self, stats):
        assert stats.predicate_selectivity(pred_of("zzz = 1")) == 1.0

    def test_conjunction_multiplies(self, stats):
        preds = parse("SELECT a FROM t WHERE a = 5 AND day < 182").where
        combined = stats.conjunction_selectivity(preds)
        lone = [stats.predicate_selectivity(p) for p in preds]
        assert combined == pytest.approx(lone[0] * lone[1])

    def test_selectivities_always_in_unit_interval(self, stats):
        fragments = [
            "a = 1", "a != 1", "a < 50", "a >= 50", "a BETWEEN 10 AND 20",
            "a IN (1, 2)", "name LIKE 'x%'", "a IS NULL", "a IS NOT NULL",
        ]
        for fragment in fragments:
            sel = stats.predicate_selectivity(pred_of(fragment))
            assert 0.0 <= sel <= 1.0, fragment
