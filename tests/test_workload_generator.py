"""Tests for the drifting trace generators."""

import numpy as np
import pytest

from repro.sql.parser import parse
from repro.workload.distance import WorkloadDistance
from repro.workload.generator import (
    TraceGenerator,
    build_star_schema,
    r1_profile,
    restrict_roles,
    s1_profile,
    s2_profile,
)
from repro.workload.windows import shared_template_fraction, split_windows


class TestStarSchema:
    def test_fact_and_dim_tables_exist(self, tiny_star):
        schema, roles = tiny_star
        for fact in roles.facts:
            assert fact.fact in schema.tables
        for dim in roles.dimensions:
            assert dim in schema.tables

    def test_legacy_tables_widen_n(self):
        narrow, _ = build_star_schema(
            fact_tables=1, fact_attributes=6, legacy_tables=0, legacy_columns=4
        )
        wide, _ = build_star_schema(
            fact_tables=1, fact_attributes=6, legacy_tables=20, legacy_columns=4
        )
        assert wide.total_columns == narrow.total_columns + 80

    def test_roles_reference_real_columns(self, tiny_star):
        schema, roles = tiny_star
        for fact_roles in roles.facts:
            table = schema.table(fact_roles.fact)
            for name in fact_roles.measures + fact_roles.eq_columns + fact_roles.range_columns:
                assert table.has_column(name)

    def test_restrict_roles_subsets(self, tiny_star):
        _, roles = tiny_star
        rng = np.random.default_rng(0)
        narrowed = restrict_roles(roles.facts[0], rng, eq_pool=3, range_pool=1, measure_pool=2)
        assert set(narrowed.eq_columns) <= set(roles.facts[0].eq_columns)
        assert len(narrowed.eq_columns) == 3
        assert narrowed.fact == roles.facts[0].fact


class TestTraceGenerator:
    def test_queries_parse(self, tiny_trace):
        for query in tiny_trace[:200]:
            parse(query.sql)  # must not raise

    def test_timestamps_sorted_and_in_range(self, tiny_trace):
        times = [q.timestamp for q in tiny_trace]
        assert times == sorted(times)
        assert times[0] >= 0
        assert times[-1] <= 70

    def test_deterministic_given_seed(self, tiny_star):
        schema, roles = tiny_star
        profile = r1_profile(queries_per_day=5, topic_count=2, templates_per_topic=3)
        first = TraceGenerator(schema, roles, profile, seed=9).generate(days=20)
        second = TraceGenerator(schema, roles, profile, seed=9).generate(days=20)
        assert [q.sql for q in first] == [q.sql for q in second]

    def test_queries_per_day_honoured(self, tiny_star):
        schema, roles = tiny_star
        profile = r1_profile(queries_per_day=5, topic_count=2, templates_per_topic=3)
        trace = TraceGenerator(schema, roles, profile, seed=1).generate(days=10)
        assert len(trace) == 50

    def test_trivial_queries_emitted(self, tiny_star):
        schema, roles = tiny_star
        profile = r1_profile(
            queries_per_day=40, topic_count=2, templates_per_topic=3, trivial_fraction=0.3
        )
        trace = TraceGenerator(schema, roles, profile, seed=1).generate(days=5)
        trivial = sum(1 for q in trace if q.sql.startswith("SELECT *"))
        assert 0.15 <= trivial / len(trace) <= 0.5


class TestDriftOrdering:
    """S1 must drift least; S2's drift must grow over time (the ramp)."""

    @pytest.fixture(scope="class")
    def traces(self, tiny_star):
        schema, roles = tiny_star
        out = {}
        for factory in (r1_profile, s1_profile, s2_profile):
            profile = factory(queries_per_day=10, topic_count=3, templates_per_topic=4)
            out[profile.name] = TraceGenerator(schema, roles, profile, seed=13).generate(
                days=140
            )
        return schema, out

    def test_s1_drifts_least(self, traces):
        schema, by_name = traces
        metric = WorkloadDistance(schema.total_columns)
        drift = {}
        for name, trace in by_name.items():
            windows = split_windows(trace, 28)
            drift[name] = np.mean(
                [metric(windows[i], windows[i + 1]) for i in range(len(windows) - 1)]
            )
        assert drift["S1"] < drift["R1"]
        assert drift["S1"] < drift["S2"]

    def test_s1_shares_most_templates(self, traces):
        _, by_name = traces
        share = {}
        for name, trace in by_name.items():
            windows = split_windows(trace, 28)
            share[name] = np.mean(
                [
                    shared_template_fraction(windows[i], windows[i + 1])
                    for i in range(len(windows) - 1)
                ]
            )
        assert share["S1"] > share["R1"]

    def test_s2_ramp_reduces_template_sharing_over_time(self, traces):
        # S2's churn ramps from ~0 to heavy across the trace, so later
        # window pairs share fewer templates than earlier ones.  (δ itself
        # is too noisy at this tiny scale for a pointwise comparison.)
        _, by_name = traces
        windows = split_windows(by_name["S2"], 28)
        shares = [
            shared_template_fraction(windows[i], windows[i + 1])
            for i in range(len(windows) - 1)
        ]
        assert shares[-1] < shares[0]

    def test_template_sharing_decays_with_lag(self, traces):
        _, by_name = traces
        windows = split_windows(by_name["R1"], 14)
        near = np.mean(
            [shared_template_fraction(windows[i], windows[i + 1]) for i in range(len(windows) - 1)]
        )
        far = np.mean(
            [shared_template_fraction(windows[i], windows[i + 5]) for i in range(len(windows) - 5)]
        )
        assert far < near


class TestRevivals:
    def test_revived_templates_return_from_history(self, tiny_star):
        schema, roles = tiny_star
        profile = r1_profile(
            queries_per_day=12,
            topic_count=3,
            templates_per_topic=4,
            churn_rate=0.3,
            revival_probability=0.95,
            revival_min_age_days=10.0,
            revival_halflife_days=30.0,
        )
        trace = TraceGenerator(schema, roles, profile, seed=21).generate(days=120)
        windows = split_windows(trace, 28)

        def keys(window):
            out = set()
            for q in window:
                t = q.template
                if not t.is_empty:
                    out.add(tuple(t.clause(c) for c in ("select", "where", "group_by", "order_by")))
            return out

        last = keys(windows[-1])
        previous = keys(windows[-2])
        history = set()
        for w in windows[:-2]:
            history |= keys(w)
        fresh = last - previous
        revived = fresh & history
        # A meaningful share of fresh templates must be comebacks.
        assert len(fresh) > 0
        assert len(revived) / len(fresh) > 0.2
