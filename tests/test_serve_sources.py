"""Tests for the serve layer's query sources and wire protocol.

Covers the newline-JSON protocol round-trip and error surface, the three
:class:`~repro.serve.sources.QuerySource` implementations (trace, queue,
socket), source-spec resolution, and the harness-side migration:
``replay``/``scheduled_replay`` consume a ``QuerySource`` and keep
accepting raw window lists behind a :class:`DeprecationWarning`.
"""

import asyncio
import json
import socket

import pytest

from repro.serve.protocol import (
    SHUTDOWN_OP,
    ProtocolError,
    ServeControl,
    decode_line,
    encode_control,
    encode_query,
)
from repro.serve.sources import (
    QueueSource,
    QuerySource,
    SocketSource,
    TraceSource,
    as_windows,
    resolve_source,
)
from repro.workload.query import WorkloadQuery
from repro.workload.windows import split_windows


def same_windows(left, right) -> bool:
    """Window-list equality by content (Workload has no ``__eq__``)."""
    return len(left) == len(right) and all(
        list(a) == list(b) for a, b in zip(left, right)
    )


def collect(source: QuerySource) -> list[WorkloadQuery]:
    """Drain a source's stream on a fresh event loop."""

    async def drain():
        return [query async for query in source.stream()]

    return asyncio.run(drain())


class TestProtocol:
    def test_query_round_trip(self):
        query = WorkloadQuery(sql="SELECT a FROM t WHERE b = 1", timestamp=12.5, frequency=3.0)
        decoded = decode_line(encode_query(query))
        assert decoded == query

    def test_decodes_bytes(self):
        query = WorkloadQuery(sql="SELECT 1 FROM t", timestamp=1.0)
        assert decode_line(encode_query(query).encode("utf-8")) == query

    def test_defaults_timestamp_and_frequency(self):
        decoded = decode_line('{"sql":"SELECT x FROM t"}')
        assert decoded.timestamp == 0.0
        assert decoded.frequency == 1.0

    def test_shutdown_control_round_trip(self):
        decoded = decode_line(encode_control())
        assert decoded == ServeControl(op=SHUTDOWN_OP)

    def test_unknown_control_op_is_surfaced(self):
        decoded = decode_line('{"op":"pause"}')
        assert isinstance(decoded, ServeControl)
        assert decoded.op == "pause"

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "   ",
            "not json",
            "[1, 2]",
            '"just a string"',
            '{"op": 7}',
            '{"sql": ""}',
            '{"sql": 42}',
            '{"no_sql_key": true}',
            '{"sql": "SELECT 1 FROM t", "timestamp": "noon"}',
            '{"sql": "SELECT 1 FROM t", "frequency": true}',
            '{"sql": "SELECT 1 FROM t", "frequency": -1.0}',
            b"\xff\xfe invalid utf8 \xff",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_line(line)

    def test_wire_format_is_compact_json(self):
        line = encode_query(WorkloadQuery(sql="SELECT 1 FROM t", timestamp=2.0))
        record = json.loads(line)
        assert record == {"sql": "SELECT 1 FROM t", "timestamp": 2.0, "frequency": 1.0}
        assert "\n" not in line


class TestTraceSource:
    def test_sorts_by_timestamp(self, tiny_trace):
        shuffled = list(reversed(tiny_trace))
        source = TraceSource(shuffled)
        stamps = [q.timestamp for q in source.queries()]
        assert stamps == sorted(stamps)
        assert len(source) == len(tiny_trace)

    def test_stream_is_replayable(self, tiny_trace):
        source = TraceSource(tiny_trace[:50])
        assert source.replayable
        assert collect(source) == collect(source) == list(source.queries())

    def test_windows_split(self, tiny_trace):
        source = TraceSource(tiny_trace, window_days=28)
        assert same_windows(source.windows(), split_windows(list(tiny_trace), 28))
        # An explicit override re-splits at the requested length.
        assert same_windows(source.windows(14), split_windows(list(tiny_trace), 14))

    def test_windows_requires_a_length(self, tiny_trace):
        with pytest.raises(ValueError, match="window_days"):
            TraceSource(tiny_trace).windows()

    def test_from_windows_is_verbatim(self, tiny_windows):
        source = TraceSource.from_windows(tiny_windows, window_days=28)
        assert source.windows() == list(tiny_windows)
        assert source.windows(28) == list(tiny_windows)

    def test_describe_mentions_size(self, tiny_trace):
        description = TraceSource(tiny_trace).describe()
        assert str(len(tiny_trace)) in description


class TestQueueSource:
    def test_streams_until_closed(self):
        source = QueueSource()
        queries = [WorkloadQuery(sql="SELECT 1 FROM t", timestamp=float(i)) for i in range(5)]
        for query in queries:
            source.put_nowait(query)
        source.close()
        assert source.backlog() == 6  # 5 queries + close sentinel
        assert collect(source) == queries
        assert source.backlog() == 0

    def test_not_replayable_and_not_windowable(self):
        source = QueueSource()
        assert not source.replayable
        with pytest.raises(TypeError, match="unbounded"):
            source.windows(28)


class TestSocketSource:
    def feed(self, address, lines, family=socket.AF_UNIX):
        import time

        payload = ("\n".join(lines) + "\n").encode("utf-8")
        deadline = time.monotonic() + 10.0
        while True:  # the listener binds concurrently; retry the connect
            client = socket.socket(family, socket.SOCK_STREAM)
            try:
                client.connect(address)
                break
            except OSError:
                client.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)
        try:
            client.sendall(payload)
        finally:
            client.close()

    def run_source(self, source, address, lines, family=socket.AF_UNIX):
        async def drain():
            received = []
            stream = source.stream()
            # First iteration binds the listener; then feed from a thread.
            first = asyncio.ensure_future(anext(stream))
            await asyncio.sleep(0)
            await asyncio.to_thread(self.feed, address, lines, family)
            received.append(await first)
            async for query in stream:
                received.append(query)
            return received

        return asyncio.run(drain())

    def test_unix_socket_round_trip(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        source = SocketSource(path=path)
        queries = [WorkloadQuery(sql="SELECT 1 FROM t", timestamp=float(i)) for i in range(4)]
        lines = [encode_query(q) for q in queries] + [encode_control()]
        assert self.run_source(source, path, lines) == queries
        assert source.protocol_errors == 0

    def test_malformed_lines_are_counted_and_skipped(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        source = SocketSource(path=path)
        good = WorkloadQuery(sql="SELECT 1 FROM t", timestamp=1.0)
        lines = ["this is not json", encode_query(good), '{"sql": ""}', encode_control()]
        assert self.run_source(source, path, lines) == [good]
        assert source.protocol_errors == 2

    def test_stale_socket_file_is_replaced(self, tmp_path):
        # A SIGKILLed daemon leaves the bound socket file behind; a
        # resumed daemon must be able to bind the same address.
        path = tmp_path / "serve.sock"
        path.write_text("stale")
        source = SocketSource(path=str(path))
        good = WorkloadQuery(sql="SELECT 1 FROM t", timestamp=1.0)
        lines = [encode_query(good), encode_control()]
        assert self.run_source(source, str(path), lines) == [good]
        assert not path.exists()  # cleaned up at stream end

    def test_tcp_socket_binds_a_free_port(self):
        source = SocketSource(host="127.0.0.1", port=0)
        good = WorkloadQuery(sql="SELECT 1 FROM t", timestamp=1.0)

        async def drain():
            received = []
            stream = source.stream()
            first = asyncio.ensure_future(anext(stream))
            while source.bound_port is None:  # resolved once listening
                await asyncio.sleep(0.01)
            await asyncio.to_thread(
                self.feed,
                ("127.0.0.1", source.bound_port),
                [encode_query(good), encode_control()],
                socket.AF_INET,
            )
            received.append(await first)
            async for query in stream:
                received.append(query)
            return received

        assert asyncio.run(drain()) == [good]

    def test_requires_exactly_one_address(self):
        with pytest.raises(ValueError):
            SocketSource()
        with pytest.raises(ValueError):
            SocketSource(path="/tmp/x.sock", host="127.0.0.1", port=1)
        with pytest.raises(ValueError):
            SocketSource(host="127.0.0.1")  # tcp needs a port


class TestResolveSource:
    def test_passes_sources_through(self, tiny_trace):
        source = TraceSource(tiny_trace)
        assert resolve_source(source) is source

    def test_unix_spec(self):
        source = resolve_source("unix:/tmp/serve.sock")
        assert isinstance(source, SocketSource)
        assert source.path == "/tmp/serve.sock"

    def test_tcp_spec(self):
        source = resolve_source("tcp:127.0.0.1:0")
        assert isinstance(source, SocketSource)
        assert source.host == "127.0.0.1"
        assert source.port == 0

    @pytest.mark.parametrize("spec", ["serve.sock", "tcp:nohost", "udp:1:2", ""])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            resolve_source(spec)

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            resolve_source(42)


class TestHarnessMigration:
    def test_as_windows_accepts_sources(self, tiny_windows):
        source = TraceSource.from_windows(tiny_windows, window_days=28)
        assert as_windows(source) == list(tiny_windows)

    def test_as_windows_warns_on_raw_lists(self, tiny_windows):
        with pytest.warns(DeprecationWarning, match="TraceSource"):
            windows = as_windows(list(tiny_windows))
        assert same_windows(windows, tiny_windows)

    def test_replay_accepts_a_source(self, columnar_adapter, tiny_windows):
        from repro.designers.columnar_nominal import ColumnarNominalDesigner
        from repro.designers.no_design import NoDesign
        from repro.harness.replay import replay

        nominal = ColumnarNominalDesigner(columnar_adapter)
        designers = {"NoDesign": NoDesign(columnar_adapter), "ExistingDesigner": nominal}

        def run(windows):
            return replay(
                windows,
                dict(designers),
                columnar_adapter,
                candidate_source=nominal,
                workload_name="tiny",
                max_transitions=1,
            )

        source = TraceSource.from_windows(tiny_windows, window_days=28)
        modern = run(source)
        with pytest.warns(DeprecationWarning):
            legacy = run(list(tiny_windows))
        for name in designers:
            # Compare the deterministic fields (design_seconds is
            # wall-clock; the cost-call counters depend on cache warmth
            # carried across the two runs).
            for a, b in zip(modern.run(name).windows, legacy.run(name).windows):
                assert a.window_index == b.window_index
                assert a.average_ms == b.average_ms
                assert a.max_ms == b.max_ms
                assert a.structure_count == b.structure_count
                assert a.design_price_bytes == b.design_price_bytes

    def test_scheduled_replay_accepts_a_source(self, columnar_adapter, tiny_windows):
        from repro.designers.columnar_nominal import ColumnarNominalDesigner
        from repro.harness.scheduler import PeriodicPolicy, scheduled_replay

        nominal = ColumnarNominalDesigner(columnar_adapter)

        def run(windows):
            return scheduled_replay(
                windows,
                nominal,
                columnar_adapter,
                PeriodicPolicy(every=1),
            )

        source = TraceSource.from_windows(tiny_windows, window_days=28)
        modern = run(source)
        with pytest.warns(DeprecationWarning):
            legacy = run(list(tiny_windows))
        assert modern.per_window_avg_ms == legacy.per_window_avg_ms
        assert modern.redesign_windows == legacy.redesign_windows
