"""Bit-identity tests for the vectorized what-if costing kernel.

The kernel's contract (see :mod:`repro.costing.kernel`) is exact
agreement with the scalar cost models — tolerance zero, on all three
substrates, for base costs, design costs, candidate matrices, and the
batched design sweep.  The property-based tests below draw random
workloads and designs and assert ``==`` on every float, never closeness.
"""

from __future__ import annotations

import io
import json
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costing.kernel import kernel_for
from repro.costing.memo import BoundedMemo
from repro.costing.service import KERNEL_MIN_BATCH, CostEvaluationService
from repro.designers.base import ColumnarAdapter, RowstoreAdapter, SamplesAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.greedy import evaluate_candidates
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.obs import MetricsRegistry, RunTracer, set_tracer
from repro.parallel.backends import ThreadBackend
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.design import StratifiedSample
from repro.samples.optimizer import SamplesCostModel
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

SUBSTRATES = ("columnar", "rowstore", "samples")


@lru_cache(maxsize=1)
def _environment():
    """A small star schema plus a pool of distinct trace queries."""
    schema, roles = build_star_schema(
        fact_tables=2,
        fact_rows=200_000,
        fact_attributes=10,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = r1_profile(queries_per_day=6, topic_count=2, templates_per_topic=3)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=30)
    sqls = list(dict.fromkeys(q.sql for q in trace))[:14]
    assert len(sqls) >= 6
    return schema, sqls


@lru_cache(maxsize=None)
def _substrate(name: str):
    """(cost_model, candidate structures, profiles) per engine.

    The cost model and candidates are shared across hypothesis examples —
    the models are deterministic, so sharing only speeds the tests up.
    Adapters/services are built fresh per test so caches never leak.
    """
    schema, sqls = _environment()
    if name == "columnar":
        model = ColumnarCostModel(schema)
        nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    elif name == "rowstore":
        model = RowstoreCostModel(schema)
        nominal = RowstoreNominalDesigner(RowstoreAdapter(model))
    else:
        model = SamplesCostModel(schema)
        nominal = SamplesNominalDesigner(SamplesAdapter(model))
    candidates = nominal.generate_candidates(Workload.from_sql(sqls))[:10]
    profiles = [model.profile(sql) for sql in sqls]
    return model, candidates, profiles


def _adapter(model):
    """A fresh adapter (own service, own caches) over a shared model."""
    service = CostEvaluationService(model)
    if isinstance(model, ColumnarCostModel):
        return ColumnarAdapter(model, costing=service)
    if isinstance(model, RowstoreCostModel):
        return RowstoreAdapter(model, costing=service)
    return SamplesAdapter(model, costing=service)


def _workload(sqls: list[str], picks: list[int], weights: list[int]) -> Workload:
    return Workload(
        WorkloadQuery(sql=sqls[i % len(sqls)], frequency=float(w))
        for i, w in zip(picks, weights)
    )


# -- kernel batch objects vs the scalar model -------------------------------------


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    mask=st.integers(0, 1023),
    q_mask=st.integers(1, (1 << 14) - 1),
)
def test_kernel_design_costs_match_scalar_exactly(substrate, mask, q_mask):
    """``base_costs``/``design_costs`` equal the scalar model bit-for-bit."""
    model, candidates, profiles = _substrate(substrate)
    adapter = _adapter(model)
    kernel = kernel_for(model)
    assert kernel is not None
    chosen_profiles = [p for i, p in enumerate(profiles) if q_mask & (1 << i)]
    structures = [c for i, c in enumerate(candidates) if mask & (1 << i)]
    batch = kernel.compile(chosen_profiles, structures)

    empty = adapter.make_design([])
    design = adapter.make_design(structures)
    scalar_base = [model.query_cost(p, empty) for p in chosen_profiles]
    scalar_design = [model.query_cost(p, design) for p in chosen_profiles]
    assert batch.base_costs().tolist() == scalar_base
    assert batch.design_costs().tolist() == scalar_design


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(substrate=st.sampled_from(SUBSTRATES), q_mask=st.integers(1, (1 << 14) - 1))
def test_kernel_candidate_matrix_matches_greedy_scalar(substrate, q_mask):
    """The kernel candidate frame reproduces greedy's scalar matrix exactly:
    unservable same-table pairs are ``inf``, off-table pairs equal the base
    cost, and every priced pair equals ``query_cost`` under the singleton
    design."""
    model, candidates, profiles = _substrate(substrate)
    adapter = _adapter(model)
    kernel = kernel_for(model)
    chosen = [p for i, p in enumerate(profiles) if q_mask & (1 << i)]
    batch = kernel.compile(chosen, candidates)

    price, unservable = batch.candidate_frame()
    base = batch.base_costs()
    matrix = np.where(unservable, np.inf, np.broadcast_to(base, price.shape))
    numeric = batch.candidate_costs()
    matrix = np.where(price, numeric, matrix)

    for c, candidate in enumerate(candidates):
        single = adapter.make_design([candidate])
        for q, profile in enumerate(chosen):
            if all(candidate.table != t.table for t in profile.tables):
                expected = base[q]  # off-table: cost cannot change
            else:
                anchor_only = adapter.structure_cost(profile, candidate)
                if anchor_only is None and profile.anchor.table == candidate.table:
                    expected = np.inf  # greedy leaves unservable pairs at inf
                else:
                    expected = model.query_cost(profile, single)
            assert matrix[c, q] == expected, (substrate, c, q)


# -- evaluate_candidates: kernel path vs forced-scalar path ------------------------


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_evaluate_candidates_kernel_equals_scalar(substrate):
    """``designers.greedy.evaluate_candidates`` returns the same arrays
    whether the costing service dispatches the kernel or the scalar loop."""
    model, candidates, _ = _substrate(substrate)
    _, sqls = _environment()
    workload = Workload.from_sql(sqls)

    with_kernel = _adapter(model)
    evaluation = evaluate_candidates(with_kernel, workload, candidates)

    forced_scalar = _adapter(model)
    forced_scalar.costing.kernel = None
    reference = evaluate_candidates(forced_scalar, workload, candidates)

    assert np.array_equal(evaluation.base_costs, reference.base_costs)
    assert np.array_equal(evaluation.matrix, reference.matrix)
    assert np.array_equal(evaluation.weights, reference.weights)
    assert np.array_equal(evaluation.sizes, reference.sizes)
    # The kernel only dispatches a batch when servable (candidate, query)
    # pairs exist; the samples pool may have none (star-join queries are
    # not sample-answerable), in which case only base costs are priced.
    price, _ = kernel_for(model).compile(
        [model.profile(sql) for sql in sqls], candidates
    ).candidate_frame()
    if price.any():
        assert with_kernel.costing.stats.kernel_batch_calls >= 1
    assert forced_scalar.costing.stats.kernel_batch_calls == 0


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_off_table_skip_preserves_scalar_matrix(substrate):
    """Regression for the off-table fast path: the scalar loop's reuse of
    ``base_costs[q]`` must equal actually pricing the singleton design."""
    model, shared, profiles = _substrate(substrate)
    schema, sqls = _environment()
    adapter = _adapter(model)
    adapter.costing.kernel = None
    # Guarantee at least one candidate on a table no query touches.
    used = {t.table for p in profiles for t in p.tables}
    unused = sorted(set(schema.tables) - used)
    assert unused, "environment must have an untouched table"
    spare, column = unused[0], schema.table(unused[0]).column_names[0]
    if substrate == "columnar":
        from repro.engine.projection import Projection, SortColumn

        extra = Projection(
            table=spare, columns=(column,), sort_columns=(SortColumn(column),)
        )
    elif substrate == "rowstore":
        from repro.rowstore.index import Index

        extra = Index(table=spare, columns=(column,))
    else:
        extra = StratifiedSample(table=spare, strata_columns=(column,), fraction=0.01)
    candidates = list(shared) + [extra]
    evaluation = evaluate_candidates(adapter, Workload.from_sql(sqls), candidates)
    checked = 0
    for c, candidate in enumerate(candidates):
        single = adapter.make_design([candidate])
        for q, profile in enumerate(profiles):
            if all(candidate.table != t.table for t in profile.tables):
                assert evaluation.matrix[c, q] == model.query_cost(profile, single)
                checked += 1
    assert checked > 0  # the pool must actually exercise the fast path


# -- workload_costs_batch ----------------------------------------------------------


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    substrate=st.sampled_from(SUBSTRATES),
    masks=st.lists(st.integers(0, 1023), min_size=1, max_size=5),
    picks=st.lists(st.integers(0, 13), min_size=1, max_size=10),
    weights=st.lists(st.integers(1, 9), min_size=10, max_size=10),
)
def test_workload_costs_batch_matches_sequential(substrate, masks, picks, weights):
    """One workload under many designs equals per-design ``workload_cost``
    on a scalar-only service — including duplicate and empty designs."""
    model, candidates, _ = _substrate(substrate)
    _, sqls = _environment()
    workload = _workload(sqls, picks, weights)
    batched = _adapter(model)
    reference = _adapter(model)
    reference.costing.kernel = None

    designs = [
        batched.make_design([c for i, c in enumerate(candidates) if m & (1 << i)])
        for m in masks
    ]
    designs.append(batched.make_design([]))
    designs.append(designs[0])  # duplicate design: served from cache

    reports = batched.workload_costs_batch(designs, workload)
    assert len(reports) == len(designs)
    for design, report in zip(designs, reports):
        expected = reference.costing.workload_cost(workload, design)
        assert report.per_query_ms == expected.per_query_ms
        assert report.weights == expected.weights


# -- edge cases --------------------------------------------------------------------


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_empty_workload_and_zero_candidates(substrate):
    """Degenerate shapes: no queries, no candidates, no structures."""
    model, candidates, profiles = _substrate(substrate)
    adapter = _adapter(model)
    kernel = kernel_for(model)

    empty_q = kernel.compile([], candidates)
    assert empty_q.base_costs().shape == (0,)
    assert empty_q.design_costs().shape == (0,)
    assert empty_q.candidate_costs().shape == (len(candidates), 0)

    no_cands = kernel.compile(profiles, [])
    assert no_cands.candidate_costs().shape == (0, len(profiles))
    expected = [model.query_cost(p, adapter.make_design([])) for p in profiles]
    assert no_cands.design_costs().tolist() == expected

    evaluation = evaluate_candidates(adapter, Workload([]), candidates)
    assert evaluation.matrix.shape == (len(candidates), 0)
    reports = adapter.workload_costs_batch([adapter.make_design([])], [])
    assert reports[0].per_query_ms == []


def test_all_uncoverable_candidates_price_as_scalar():
    """A sample stratified on nothing a query depends on serves no query:
    every same-table cell is inf, exactly as the scalar greedy loop."""
    schema, sqls = _environment()
    model = SamplesCostModel(schema)
    adapter = _adapter(model)
    tables = sorted(schema.tables)
    useless = [
        StratifiedSample(
            table=name,
            strata_columns=(schema.table(name).column_names[0],),
            fraction=1e-6,
        )
        for name in tables
    ]
    evaluation = evaluate_candidates(adapter, Workload.from_sql(sqls), useless)
    reference = _adapter(model)
    reference.costing.kernel = None
    scalar = evaluate_candidates(reference, Workload.from_sql(sqls), useless)
    assert np.array_equal(evaluation.matrix, scalar.matrix)
    assert np.array_equal(evaluation.base_costs, scalar.base_costs)


# -- service dispatch, counters, backends, events ----------------------------------


def test_small_miss_batches_stay_on_scalar_path():
    """Fewer than KERNEL_MIN_BATCH misses never dispatch the kernel, so
    exact raw-call counter tests keep their meaning."""
    model, candidates, _ = _substrate("columnar")
    _, sqls = _environment()
    service = CostEvaluationService(model)
    design = ColumnarAdapter(model, costing=service).make_design(candidates[:2])
    few = sqls[: KERNEL_MIN_BATCH - 1]
    service.evaluate_neighborhood([design], [Workload.from_sql(few)])
    assert service.stats.kernel_batch_calls == 0
    assert service.stats.raw_model_calls == len(few)


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_thread_backend_kernel_fill_bit_identical(substrate):
    """Chunked kernel evaluation over a backend matches the serial fill —
    values and every counter."""
    model, candidates, _ = _substrate(substrate)
    _, sqls = _environment()
    workload = Workload.from_sql(sqls)
    designs = [
        _adapter(model).make_design(candidates[:3]),
        _adapter(model).make_design(candidates[3:7]),
    ]

    serial = CostEvaluationService(model)
    threaded = CostEvaluationService(model, backend=ThreadBackend(jobs=3))
    expected = serial.evaluate_neighborhood(designs, [workload])
    actual = threaded.evaluate_neighborhood(designs, [workload])
    for row_a, row_b in zip(expected, actual):
        for rep_a, rep_b in zip(row_a, row_b):
            assert rep_a.per_query_ms == rep_b.per_query_ms
    assert serial.stats.kernel_batch_calls == threaded.stats.kernel_batch_calls
    assert serial.stats.kernel_pairs_priced == threaded.stats.kernel_pairs_priced
    assert serial.stats.raw_model_calls == threaded.stats.raw_model_calls


def test_kernel_events_and_counters_emitted():
    """Kernel dispatch emits arena_build/kernel_bind/kernel_batch trace
    events and bumps the kernel counters."""
    model, candidates, _ = _substrate("columnar")
    _, sqls = _environment()
    service = CostEvaluationService(model)
    design = ColumnarAdapter(model, costing=service).make_design(candidates[:3])
    buffer = io.StringIO()
    previous = set_tracer(RunTracer(buffer, clock=lambda: 0.0))
    try:
        service.evaluate_neighborhood([design], [Workload.from_sql(sqls)])
    finally:
        set_tracer(previous)
    events = [json.loads(line) for line in buffer.getvalue().splitlines()]
    kinds = [e["event"] for e in events]
    assert "arena_build" in kinds
    assert "kernel_bind" in kinds
    assert "kernel_batch" in kinds
    build_event = next(e for e in events if e["event"] == "arena_build")
    assert build_event["substrate"] == "columnar"
    assert build_event["queries"] == len(sqls)
    bind_event = next(e for e in events if e["event"] == "kernel_bind")
    assert bind_event["substrate"] == "columnar"
    assert bind_event["queries"] == len(sqls)
    batch_event = next(e for e in events if e["event"] == "kernel_batch")
    assert batch_event["pairs"] == len(sqls)
    assert service.stats.kernel_batch_calls == 1
    assert service.stats.kernel_pairs_priced == len(sqls)

    registry = MetricsRegistry()
    service.publish_metrics(registry)
    sampled = registry.snapshot()
    assert sampled["costing.kernel.batch_calls"] == 1
    assert sampled["costing.kernel.pairs_priced"] == len(sqls)


# -- BoundedMemo -------------------------------------------------------------------


def test_bounded_memo_caps_entries_and_counts_evictions():
    from repro.obs import get_metrics

    counter = get_metrics().counter("costing.memo_evictions.test_unit")
    before = counter.value
    memo = BoundedMemo("costing.memo_evictions.test_unit", max_entries=4)
    for i in range(7):
        memo[("sql", i)] = float(i)
    assert len(memo) == 4
    assert ("sql", 0) not in memo
    assert ("sql", 6) in memo
    assert memo[("sql", 6)] == 6.0
    assert counter.value == before + 3  # every eviction is metrics-counted


def test_bounded_memo_lru_recency_on_read():
    memo = BoundedMemo("costing.memo_evictions.test_unit", max_entries=2)
    memo["a"] = 1.0
    memo["b"] = 2.0
    assert memo["a"] == 1.0  # refresh "a": "b" becomes the LRU entry
    memo["c"] = 3.0
    assert "a" in memo
    assert "b" not in memo


def test_bounded_memo_stores_none_results():
    """``None`` (= structure cannot serve) is a first-class memo value."""
    memo = BoundedMemo("costing.memo_evictions.test_unit", max_entries=4)
    memo["x"] = None
    assert "x" in memo
    assert memo["x"] is None


def test_model_memos_are_bounded():
    """All three cost models use the metrics-counted bounded memo."""
    schema, _ = _environment()
    assert isinstance(ColumnarCostModel(schema)._projection_costs, BoundedMemo)
    assert isinstance(RowstoreCostModel(schema)._structure_costs, BoundedMemo)
    assert isinstance(SamplesCostModel(schema)._sample_costs, BoundedMemo)
