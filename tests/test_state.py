"""Tests for ``repro.state``: snapshot format, fault injection, resume.

Three layers:

* unit — :class:`RunCheckpointer` file-format mechanics (atomic write,
  digest/version/identity verification, ``every`` gating, the
  :class:`SimulatedCrash` hook);
* resume equivalence — kill-at-every-boundary sweeps over the CliffGuard
  loop (on all three engine substrates), the windowed replay, and the
  scheduled replay, asserting resumed == uninterrupted bit-for-bit
  (modulo wall-clock fields);
* experiment runners — Γ-sweep / designer-comparison /
  schedule-comparison resume at their unit granularity.
"""

import io
import json
import pickle
from dataclasses import fields

import pytest

from repro.core.cliffguard import CliffGuard
from repro.designers.base import (
    ColumnarAdapter,
    RowstoreAdapter,
    SamplesAdapter,
    default_budget_bytes,
)
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.harness.replay import replay
from repro.harness.scheduler import (
    DriftTriggeredPolicy,
    PeriodicPolicy,
    scheduled_replay,
)
from repro.obs import MetricsRegistry, RunTracer, set_tracer
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.optimizer import SamplesCostModel
from repro.state import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    CheckpointVersionError,
    RunCheckpointer,
    SimulatedCrash,
    run_key,
)
from repro.workload.distance import WorkloadDistance
from repro.workload.sampler import NeighborhoodSampler


# -- helpers ---------------------------------------------------------------------


def _stack(substrate: str, schema):
    """(adapter, nominal) for one engine substrate, built fresh."""
    if substrate == "columnar":
        adapter = ColumnarAdapter(
            ColumnarCostModel(schema), default_budget_bytes(schema, 0.5)
        )
        return adapter, ColumnarNominalDesigner(adapter)
    if substrate == "rowstore":
        adapter = RowstoreAdapter(
            RowstoreCostModel(schema), default_budget_bytes(schema, 0.5)
        )
        return adapter, RowstoreNominalDesigner(adapter)
    adapter = SamplesAdapter(
        SamplesCostModel(schema), default_budget_bytes(schema, 0.1)
    )
    return adapter, SamplesNominalDesigner(adapter)


def _sampler(schema, trace, window, seed=3):
    pool = [q for q in trace if q.timestamp < window.span_days[0]]
    return NeighborhoodSampler(
        WorkloadDistance(schema.total_columns),
        schema,
        pool=pool,
        seed=seed,
        min_query_set=4,
        max_query_set=8,
    )


def _report_facts(report):
    """Every report field the resume-equivalence contract covers.

    ``RESUME_EXEMPT_FIELDS`` names the excluded ones: wall-clock timings
    and the cache-warmth tallies (matrix hits / delta savings), which by
    design depend on how much derived cache state survived the kill."""
    exempt = type(report).RESUME_EXEMPT_FIELDS
    return {
        f.name: getattr(report, f.name)
        for f in fields(report)
        if f.name not in exempt
    }


def _window_facts(run):
    """Deterministic fields of every WindowOutcome (drop design_seconds)."""
    return [
        (
            w.window_index,
            w.average_ms,
            w.max_ms,
            w.design_price_bytes,
            w.structure_count,
            w.query_cost_calls,
            w.raw_cost_model_calls,
            w.cache_hit_rate,
        )
        for w in run.windows
    ]


# -- run_key ---------------------------------------------------------------------


class TestRunKey:
    def test_deterministic_and_sensitive(self):
        assert run_key("a", 1, 2.5) == run_key("a", 1, 2.5)
        assert run_key("a", 1) != run_key("a", 2)
        assert run_key("a", 1) != run_key("a", 1, None)

    def test_boundary_between_parts(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert run_key("ab", "c") != run_key("a", "bc")


# -- the checkpointer ------------------------------------------------------------


class TestCheckpointerUnit:
    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RunCheckpointer(tmp_path / "c", every=0)
        with pytest.raises(ValueError):
            RunCheckpointer(tmp_path / "c", crash_after=0)

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit", 1)
        RunCheckpointer(path).save("unit", key, {"step": 3, "alpha": 2.5})
        loaded = RunCheckpointer(path, resume=True).load("unit", key)
        assert loaded == {"step": 3, "alpha": 2.5}

    def test_load_without_resume_returns_none(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        RunCheckpointer(path).save("unit", key, {"x": 1})
        assert RunCheckpointer(path, resume=False).load("unit", key) is None

    def test_load_missing_file_returns_none(self, tmp_path):
        ckpt = RunCheckpointer(tmp_path / "absent.ckpt", resume=True)
        assert ckpt.load("unit", run_key("unit")) is None

    def test_latest_snapshot_wins(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        writer = RunCheckpointer(path)
        writer.save("unit", key, {"step": 1})
        writer.save("unit", key, {"step": 2})
        assert RunCheckpointer(path, resume=True).load("unit", key) == {"step": 2}

    def test_flipped_payload_byte_is_corrupt(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        RunCheckpointer(path).save("unit", key, {"x": 1})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            RunCheckpointer(path, resume=True).load("unit", key)

    def test_truncated_payload_is_corrupt(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        RunCheckpointer(path).save("unit", key, {"x": list(range(100))})
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointCorruptError):
            RunCheckpointer(path, resume=True).load("unit", key)

    def test_missing_header_is_corrupt(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b"no newline here")
        with pytest.raises(CheckpointCorruptError):
            RunCheckpointer(path, resume=True).load("unit", run_key("unit"))

    def test_foreign_magic_is_corrupt(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b'{"magic":"something-else"}\n')
        with pytest.raises(CheckpointCorruptError):
            RunCheckpointer(path, resume=True).load("unit", run_key("unit"))

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        RunCheckpointer(path).save("unit", key, {"x": 1})
        raw = path.read_bytes()
        newline = raw.find(b"\n")
        header = json.loads(raw[:newline])
        header["version"] = 999
        path.write_bytes(json.dumps(header).encode() + raw[newline:])
        with pytest.raises(CheckpointVersionError):
            RunCheckpointer(path, resume=True).load("unit", key)

    def test_kind_and_key_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.ckpt"
        RunCheckpointer(path).save("replay", run_key("a"), {"x": 1})
        reader = RunCheckpointer(path, resume=True)
        with pytest.raises(CheckpointMismatchError):
            reader.load("gamma_sweep", run_key("a"))
        with pytest.raises(CheckpointMismatchError):
            reader.load("replay", run_key("b"))

    def test_every_gates_writes_and_payload_calls(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        calls = []
        ckpt = RunCheckpointer(path, every=3)
        for step in range(7):
            wrote = ckpt.step("unit", key, lambda: calls.append(1) or {"s": 1})
            assert wrote == ((step + 1) % 3 == 0)
        # Skipped boundaries must never pay for payload construction.
        assert len(calls) == 2
        assert ckpt.writes == 2
        assert ckpt.steps == 7

    def test_simulated_crash_leaves_a_durable_snapshot(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        ckpt = RunCheckpointer(path, crash_after=2)
        ckpt.save("unit", key, {"step": 1})
        with pytest.raises(SimulatedCrash):
            ckpt.save("unit", key, {"step": 2})
        # The write that "crashed" completed first — exactly like SIGKILL
        # immediately after a durable checkpoint.
        assert RunCheckpointer(path, resume=True).load("unit", key) == {"step": 2}

    def test_simulated_crash_not_caught_by_except_exception(self, tmp_path):
        ckpt = RunCheckpointer(tmp_path / "c", crash_after=1)
        with pytest.raises(SimulatedCrash):
            try:
                ckpt.save("unit", run_key("u"), {})
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must escape except Exception")

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "run.ckpt"
        RunCheckpointer(path).save("unit", run_key("u"), {"x": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]

    def test_save_failure_removes_temp_file(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = RunCheckpointer(path)

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            ckpt.save("unit", run_key("u"), Unpicklable())
        assert list(tmp_path.iterdir()) == []

    def test_metrics_and_events(self, tmp_path):
        path = tmp_path / "run.ckpt"
        key = run_key("unit")
        registry = MetricsRegistry()
        buffer = io.StringIO()
        tracer = RunTracer(buffer, clock=lambda: 0.0)
        previous = set_tracer(tracer)
        try:
            ckpt = RunCheckpointer(path, every=2, metrics=registry)
            ckpt.step("unit", key, dict)
            ckpt.step("unit", key, dict)
            RunCheckpointer(path, resume=True, metrics=registry).load("unit", key)
        finally:
            set_tracer(previous)
        snap = registry.snapshot()
        assert snap["state.checkpoint_writes"] == 1
        assert snap["state.checkpoint_skips"] == 1
        assert snap["state.checkpoint_loads"] == 1
        assert snap["state.payload_bytes"] > 0
        assert snap["state.write_seconds"]["count"] == 1
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        names = [e["event"] for e in events]
        assert names == ["checkpoint_write", "checkpoint_load"]
        assert events[0]["kind"] == "unit"
        assert events[0]["bytes"] > 0


# -- CliffGuard resume equivalence ----------------------------------------------


class TestCliffGuardResume:
    def _design(self, tiny_star, tiny_trace, tiny_windows, substrate, ckpt=None):
        """One fresh CliffGuard run (new adapter/sampler every call)."""
        schema, _ = tiny_star
        window = tiny_windows[1]
        adapter, nominal = _stack(substrate, schema)
        sampler = _sampler(schema, tiny_trace, window)
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=3, max_iterations=2
        )
        robust.checkpointer = ckpt
        design = robust.design(window)
        return design, robust.last_report

    @pytest.mark.parametrize("substrate", ["columnar", "rowstore", "samples"])
    def test_kill_at_every_boundary_resumes_bit_identical(
        self, tmp_path, tiny_star, tiny_trace, tiny_windows, substrate
    ):
        baseline_design, baseline_report = self._design(
            tiny_star, tiny_trace, tiny_windows, substrate
        )
        # Count the run's checkpoint boundaries with an uncrashed pass.
        probe = RunCheckpointer(tmp_path / f"{substrate}.probe.ckpt")
        probe_design, probe_report = self._design(
            tiny_star, tiny_trace, tiny_windows, substrate, probe
        )
        assert probe_design == baseline_design
        assert _report_facts(probe_report) == _report_facts(baseline_report)
        assert probe.writes >= 2

        for boundary in range(1, probe.writes + 1):
            path = tmp_path / f"{substrate}.{boundary}.ckpt"
            with pytest.raises(SimulatedCrash):
                self._design(
                    tiny_star,
                    tiny_trace,
                    tiny_windows,
                    substrate,
                    RunCheckpointer(path, crash_after=boundary),
                )
            design, report = self._design(
                tiny_star,
                tiny_trace,
                tiny_windows,
                substrate,
                RunCheckpointer(path, resume=True),
            )
            assert design == baseline_design, f"boundary {boundary}"
            assert _report_facts(report) == _report_facts(baseline_report), (
                f"boundary {boundary}"
            )

    def test_mismatched_configuration_refuses_to_resume(
        self, tmp_path, tiny_star, tiny_trace, tiny_windows
    ):
        path = tmp_path / "run.ckpt"
        schema, _ = tiny_star
        window = tiny_windows[1]
        adapter, nominal = _stack("columnar", schema)
        robust = CliffGuard(
            nominal,
            adapter,
            _sampler(schema, tiny_trace, window),
            gamma=0.005,
            n_samples=3,
            max_iterations=2,
        )
        robust.checkpointer = RunCheckpointer(path)
        robust.design(window)
        other = CliffGuard(
            nominal,
            adapter,
            _sampler(schema, tiny_trace, window),
            gamma=0.01,  # different run identity
            n_samples=3,
            max_iterations=2,
        )
        other.checkpointer = RunCheckpointer(path, resume=True)
        with pytest.raises(CheckpointMismatchError):
            other.design(window)

    def test_patience_stop_resumes_identically(
        self, tmp_path, tiny_star, tiny_trace, tiny_windows
    ):
        """A run that stops early must not restart its loop on resume."""

        def run(ckpt=None):
            schema, _ = tiny_star
            window = tiny_windows[1]
            adapter, nominal = _stack("columnar", schema)
            robust = CliffGuard(
                nominal,
                adapter,
                _sampler(schema, tiny_trace, window),
                gamma=0.005,
                n_samples=3,
                max_iterations=4,
                patience=1,
            )
            robust.checkpointer = ckpt
            return robust.design(window), robust.last_report

        baseline_design, baseline_report = run()
        probe = RunCheckpointer(tmp_path / "probe.ckpt")
        run(probe)
        for boundary in range(1, probe.writes + 1):
            path = tmp_path / f"patience.{boundary}.ckpt"
            with pytest.raises(SimulatedCrash):
                run(RunCheckpointer(path, crash_after=boundary))
            design, report = run(RunCheckpointer(path, resume=True))
            assert design == baseline_design
            assert _report_facts(report) == _report_facts(baseline_report)


# -- replay / scheduled replay resume -------------------------------------------


class TestReplayResume:
    def _replay(self, tiny_star, tiny_trace, tiny_windows, ckpt=None):
        schema, _ = tiny_star
        adapter, nominal = _stack("columnar", schema)
        sampler = _sampler(schema, tiny_trace, tiny_windows[1])
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=3, max_iterations=1
        )
        return replay(
            tiny_windows,
            {"ExistingDesigner": nominal, "CliffGuard": robust},
            adapter,
            candidate_source=nominal,
            workload_name="tiny",
            checkpointer=ckpt,
        )

    def test_kill_at_every_window_resumes_bit_identical(
        self, tmp_path, tiny_star, tiny_trace, tiny_windows
    ):
        baseline = self._replay(tiny_star, tiny_trace, tiny_windows)
        probe = RunCheckpointer(tmp_path / "probe.ckpt")
        probed = self._replay(tiny_star, tiny_trace, tiny_windows, probe)
        assert probed.evaluated_query_counts == baseline.evaluated_query_counts
        assert probe.writes >= 2

        for boundary in range(1, probe.writes + 1):
            path = tmp_path / f"replay.{boundary}.ckpt"
            with pytest.raises(SimulatedCrash):
                self._replay(
                    tiny_star,
                    tiny_trace,
                    tiny_windows,
                    RunCheckpointer(path, crash_after=boundary),
                )
            resumed = self._replay(
                tiny_star,
                tiny_trace,
                tiny_windows,
                RunCheckpointer(path, resume=True),
            )
            assert resumed.evaluated_query_counts == baseline.evaluated_query_counts
            for name in baseline.runs:
                assert _window_facts(resumed.run(name)) == _window_facts(
                    baseline.run(name)
                ), f"{name} @ boundary {boundary}"


class TestScheduledReplayResume:
    def _run(self, tiny_star, tiny_trace, tiny_windows, ckpt=None):
        schema, _ = tiny_star
        adapter, nominal = _stack("columnar", schema)
        sampler = _sampler(schema, tiny_trace, tiny_windows[1])
        robust = CliffGuard(
            nominal, adapter, sampler, gamma=0.005, n_samples=3, max_iterations=1
        )
        return scheduled_replay(
            tiny_windows,
            robust,
            adapter,
            PeriodicPolicy(every=2),
            checkpointer=ckpt,
        )

    def test_kill_at_every_window_resumes_bit_identical(
        self, tmp_path, tiny_star, tiny_trace, tiny_windows
    ):
        baseline = self._run(tiny_star, tiny_trace, tiny_windows)
        probe = RunCheckpointer(tmp_path / "probe.ckpt")
        assert self._run(tiny_star, tiny_trace, tiny_windows, probe) == baseline

        for boundary in range(1, probe.writes + 1):
            path = tmp_path / f"sched.{boundary}.ckpt"
            with pytest.raises(SimulatedCrash):
                self._run(
                    tiny_star,
                    tiny_trace,
                    tiny_windows,
                    RunCheckpointer(path, crash_after=boundary),
                )
            resumed = self._run(
                tiny_star,
                tiny_trace,
                tiny_windows,
                RunCheckpointer(path, resume=True),
            )
            # ScheduleOutcome has no wall-clock fields: exact equality.
            assert resumed == baseline, f"boundary {boundary}"


class TestPolicyState:
    def test_periodic_roundtrip(self):
        policy = PeriodicPolicy(every=3)
        policy.should_redesign(2, None, None)
        snapshot = policy.state()
        assert pickle.loads(pickle.dumps(snapshot)) == {"last_redesign": 2}
        policy.reset()
        policy.restore(snapshot)
        # Anchored at window 2: window 4 is within the period, 5 is not.
        assert not policy.should_redesign(4, object(), None)
        assert policy.should_redesign(5, object(), None)

    def test_drift_triggered_roundtrip(self):
        policy = DriftTriggeredPolicy(lambda a, b: 1.0, threshold=0.5)
        policy.should_redesign(3, object(), object())
        snapshot = policy.state()
        policy.reset()
        assert policy.triggers == []
        policy.restore(snapshot)
        assert policy.triggers == [3]
        # The restored list must be a copy, not an alias of the snapshot.
        policy.triggers.append(9)
        assert snapshot == {"triggers": [3]}
