"""Tests for the designer zoo: greedy machinery, nominal designers, and the
Section 6.1 baselines."""

import numpy as np
import pytest

from repro.designers.base import default_budget_bytes
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.future_knowing import FutureKnowingDesigner
from repro.designers.greedy import evaluate_candidates, greedy_select
from repro.designers.local_search import OptimalLocalSearchDesigner
from repro.designers.majority_vote import MajorityVoteDesigner
from repro.designers.no_design import NoDesign
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.workload.distance import WorkloadDistance
from repro.workload.sampler import NeighborhoodSampler
from repro.workload.workload import Workload


@pytest.fixture
def window(tiny_windows) -> Workload:
    return tiny_windows[1]


class TestGreedy:
    def test_respects_budget(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        candidates = nominal.generate_candidates(window)
        evaluation = evaluate_candidates(columnar_adapter, window, candidates)
        budget = int(min(evaluation.sizes) * 3.5)
        chosen = greedy_select(evaluation, budget)
        total = sum(columnar_adapter.structure_size(c) for c in chosen)
        assert total <= budget
        assert 1 <= len(chosen) <= 3

    def test_max_structures_cap(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        candidates = nominal.generate_candidates(window)
        evaluation = evaluate_candidates(columnar_adapter, window, candidates)
        chosen = greedy_select(evaluation, 10**15, max_structures=2)
        assert len(chosen) == 2

    def test_picks_reduce_workload_cost_monotonically(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        candidates = nominal.generate_candidates(window)
        evaluation = evaluate_candidates(columnar_adapter, window, candidates)
        chosen = greedy_select(evaluation, columnar_adapter.budget_bytes)
        design = columnar_adapter.empty_design()
        last = columnar_adapter.workload_cost(window, design).total_ms
        design = columnar_adapter.make_design(chosen)
        now = columnar_adapter.workload_cost(window, design).total_ms
        assert now < last

    def test_empty_candidates(self, columnar_adapter, window):
        evaluation = evaluate_candidates(columnar_adapter, window, [])
        assert greedy_select(evaluation, 10**12) == []


class TestColumnarNominal:
    def test_design_improves_input_workload(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        design = nominal.design(window)
        empty = columnar_adapter.empty_design()
        assert (
            columnar_adapter.workload_cost(window, design).average_ms
            < columnar_adapter.workload_cost(window, empty).average_ms
        )

    def test_design_within_budget(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        design = nominal.design(window)
        assert columnar_adapter.design_price(design) <= columnar_adapter.budget_bytes

    def test_candidates_cover_templates(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        candidates = nominal.generate_candidates(window)
        assert candidates
        # every candidate anchors on a real table and has a sort key
        for candidate in candidates:
            assert candidate.table in columnar_adapter.schema.tables
            assert candidate.sort_columns

    def test_merged_candidates_exist(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        candidates = nominal.generate_candidates(window)
        widths = [len(c.columns) for c in candidates]
        assert max(widths) > min(widths)  # both exact and merged shapes

    def test_empty_workload_gives_empty_design(self, columnar_adapter):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        design = nominal.design(Workload([]))
        assert len(design) == 0

    def test_deterministic(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        assert nominal.design(window) == nominal.design(window)


class TestRowstoreNominal:
    def test_design_improves_input_workload(self, rowstore_adapter, window):
        nominal = RowstoreNominalDesigner(rowstore_adapter)
        design = nominal.design(window)
        empty = rowstore_adapter.empty_design()
        assert (
            rowstore_adapter.workload_cost(window, design).average_ms
            < rowstore_adapter.workload_cost(window, empty).average_ms
        )

    def test_design_within_budget(self, rowstore_adapter, window):
        nominal = RowstoreNominalDesigner(rowstore_adapter)
        design = nominal.design(window)
        assert rowstore_adapter.design_price(design) <= rowstore_adapter.budget_bytes

    def test_generates_indices(self, rowstore_adapter, window):
        from repro.rowstore.index import Index

        nominal = RowstoreNominalDesigner(rowstore_adapter)
        candidates = nominal.generate_candidates(window)
        assert any(isinstance(c, Index) for c in candidates)

    def test_compression_merges_similar_templates(self, rowstore_adapter, window):
        loose = RowstoreNominalDesigner(rowstore_adapter, compression_radius=0)
        tight = RowstoreNominalDesigner(rowstore_adapter, compression_radius=6)
        assert len(tight.generate_candidates(window)) <= len(
            loose.generate_candidates(window)
        )


class TestBaselines:
    @pytest.fixture
    def sampler(self, tiny_star, tiny_trace, window):
        schema, _ = tiny_star
        distance = WorkloadDistance(schema.total_columns)
        pool = [q for q in tiny_trace if q.timestamp < window.span_days[0]]
        return NeighborhoodSampler(
            distance, schema, pool=pool, seed=3, min_query_set=4, max_query_set=8
        )

    def test_no_design_is_empty(self, columnar_adapter, window):
        assert len(NoDesign(columnar_adapter).design(window)) == 0

    def test_future_knowing_is_marked_oracle(self, columnar_adapter):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        oracle = FutureKnowingDesigner(nominal)
        assert oracle.is_oracle
        assert not getattr(nominal, "is_oracle", False)

    def test_majority_vote_within_budget(self, columnar_adapter, window, sampler):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        designer = MajorityVoteDesigner(
            nominal, columnar_adapter, sampler, gamma=0.005, n_samples=3
        )
        design = designer.design(window)
        assert columnar_adapter.design_price(design) <= columnar_adapter.budget_bytes
        assert len(design) > 0

    def test_majority_vote_keeps_commonly_voted_structures(
        self, columnar_adapter, window, sampler
    ):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        designer = MajorityVoteDesigner(
            nominal, columnar_adapter, sampler, gamma=0.005, n_samples=3
        )
        design = designer.design(window)
        base = nominal.design(window)
        shared = set(columnar_adapter.structures(design)) & set(
            columnar_adapter.structures(base)
        )
        assert shared  # the stable core of the nominal design survives voting

    def test_local_search_within_budget(self, columnar_adapter, window, sampler):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        designer = OptimalLocalSearchDesigner(
            nominal, columnar_adapter, sampler, gamma=0.005, n_samples=3
        )
        design = designer.design(window)
        assert columnar_adapter.design_price(design) <= columnar_adapter.budget_bytes
        assert len(design) > 0

    def test_local_search_improves_over_empty(self, columnar_adapter, window, sampler):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        designer = OptimalLocalSearchDesigner(
            nominal, columnar_adapter, sampler, gamma=0.005, n_samples=3
        )
        design = designer.design(window)
        empty = columnar_adapter.empty_design()
        assert (
            columnar_adapter.workload_cost(window, design).average_ms
            < columnar_adapter.workload_cost(window, empty).average_ms
        )


class TestAdapters:
    def test_default_budget_scales_with_fraction(self, tiny_star):
        schema, _ = tiny_star
        assert default_budget_bytes(schema, 0.5) == pytest.approx(
            default_budget_bytes(schema, 0.25) * 2
        )

    def test_columnar_adapter_surface(self, columnar_adapter, window):
        nominal = ColumnarNominalDesigner(columnar_adapter)
        design = nominal.design(window)
        structures = columnar_adapter.structures(design)
        rebuilt = columnar_adapter.make_design(structures)
        assert rebuilt == design
        for structure in structures[:3]:
            assert columnar_adapter.structure_size(structure) > 0

    def test_rowstore_adapter_surface(self, rowstore_adapter, window):
        nominal = RowstoreNominalDesigner(rowstore_adapter)
        design = nominal.design(window)
        structures = rowstore_adapter.structures(design)
        rebuilt = rowstore_adapter.make_design(structures)
        assert rebuilt == design
