"""BanditDesigner: C²UCB model, safety guard, determinism, kill-resume.

The contract under test (docs/designers.md):

* same-seed determinism — the serial, thread, and process backends
  produce bit-identical designs, window trajectories, and arm stats;
* the safety guard — no accepted round's predicted cost regresses past
  ``(1 + safety_margin) ×`` the incumbent's predicted cost;
* observe/checkpoint/kill-resume equivalence — a replay crashed (via
  :class:`SimulatedCrash`) at every window boundary and resumed lands on
  the bit-identical result and learner state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designers.bandit import (
    FEATURE_DIM,
    BanditDesigner,
    extract_features,
)
from repro.designers.greedy import CandidateEvaluation
from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    run_designer_comparison,
)
from repro.parallel import ProcessBackend, ThreadBackend
from repro.state import RunCheckpointer, SimulatedCrash


def tiny_scale(**overrides) -> ExperimentScale:
    base = dict(
        days=84,
        window_days=28,
        queries_per_day=6,
        n_samples=2,
        iterations=1,
        seed=3,
        legacy_tables=2,
        max_transitions=2,
        skip_transitions=0,
    )
    base.update(overrides)
    return ExperimentScale(**base)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(tiny_scale())


def bandit_for(context, **kwargs):
    from repro.designers.columnar_nominal import ColumnarNominalDesigner

    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    return BanditDesigner(nominal, adapter, **kwargs), adapter


def replay_facts(result):
    return {
        name: (
            [
                (
                    w.window_index,
                    w.average_ms,
                    w.max_ms,
                    w.design_price_bytes,
                    w.structure_count,
                )
                for w in run.windows
            ],
            run.stats,
        )
        for name, run in result.runs.items()
    }


class TestModel:
    def test_design_learns_and_reports(self, context):
        bandit, adapter = bandit_for(context)
        windows = [w for w in context.trace_windows("R1") if len(w)]
        design = bandit.design(windows[0])
        assert bandit.rounds == 1
        assert adapter.structures(design)
        observed = {
            q.sql: adapter.query_cost(q.sql, design)
            for q in windows[1].collapsed()
        }
        before = bandit.V.copy()
        bandit.observe(windows[1], design, observed)
        assert bandit.observations == 1
        assert not np.array_equal(bandit.V, before)
        stats = bandit.stats()
        assert stats["rounds"] == 1 and stats["observations"] == 1
        assert stats["arms_tracked"] > 0

    def test_observe_ignores_unknown_structures(self, context):
        bandit, adapter = bandit_for(context)
        windows = [w for w in context.trace_windows("R1") if len(w)]
        # A design the bandit never selected: no feature vectors on
        # record, so there is nothing to credit.
        foreign = bandit.nominal.design(windows[0])
        before = bandit.V.copy()
        bandit.observe(windows[0], foreign, {"SELECT 1": 1.0})
        assert np.array_equal(bandit.V, before)

    def test_empty_window_returns_incumbent(self, context):
        from repro.workload.workload import Workload

        bandit, adapter = bandit_for(context)
        design = bandit.design(Workload([]))
        assert design == adapter.empty_design()
        windows = [w for w in context.trace_windows("R1") if len(w)]
        accepted = bandit.design(windows[0])
        assert bandit.design(Workload([])) == accepted

    def test_export_import_round_trip(self, context):
        bandit, adapter = bandit_for(context, seed=11)
        windows = [w for w in context.trace_windows("R1") if len(w)]
        design = bandit.design(windows[0])
        observed = {
            q.sql: adapter.query_cost(q.sql, design)
            for q in windows[1].collapsed()
        }
        bandit.observe(windows[1], design, observed)
        state = bandit.export_state()
        twin, _ = bandit_for(context, seed=999)
        twin.import_state(state)
        assert twin.model_digest() == bandit.model_digest()
        assert twin.design(windows[1]) == bandit.design(windows[1])

    def test_constructor_validation(self, context):
        with pytest.raises(ValueError, match="alpha"):
            bandit_for(context, alpha=-1.0)
        with pytest.raises(ValueError, match="regularization"):
            bandit_for(context, regularization=0.0)
        with pytest.raises(ValueError, match="safety_margin"):
            bandit_for(context, safety_margin=-0.1)


class TestSafetyGuard:
    def test_accepted_rounds_respect_margin(self, context):
        margin = 0.15
        bandit, adapter = bandit_for(context, safety_margin=margin)
        windows = [w for w in context.trace_windows("ECOMMERCE") if len(w)]
        for window in windows:
            incumbent = bandit._incumbent_design()
            fallbacks = bandit.safety_fallbacks
            design = bandit.design(window)
            bound = adapter.workload_cost(window, incumbent).average_ms * (
                1.0 + margin
            )
            if bandit.safety_fallbacks == fallbacks:
                # Accepted: the served design's predicted cost honors the
                # no-regret bound against the round's incumbent.
                assert adapter.workload_cost(window, design).average_ms <= bound * (
                    1.0 + 1e-9
                )
            else:
                # Rejected: the incumbent keeps serving, unchanged.
                assert design == incumbent

    def test_zero_margin_never_regresses(self, context):
        bandit, adapter = bandit_for(context, safety_margin=0.0)
        windows = [w for w in context.trace_windows("HTAP") if len(w)]
        for window in windows:
            incumbent = bandit._incumbent_design()
            design = bandit.design(window)
            assert (
                adapter.workload_cost(window, design).average_ms
                <= adapter.workload_cost(window, incumbent).average_ms
                * (1.0 + 1e-9)
            )

    def test_fallback_surfaces_counter(self, context):
        from repro.obs import get_metrics

        bandit, adapter = bandit_for(context, safety_margin=0.0, alpha=50.0)
        windows = [w for w in context.trace_windows("HTAP") if len(w)]
        before = get_metrics().counter("bandit.safety_fallbacks").value
        for window in windows:
            bandit.design(window)
        if bandit.safety_fallbacks:
            after = get_metrics().counter("bandit.safety_fallbacks").value
            assert after - before == bandit.safety_fallbacks


class TestBackendDeterminism:
    WHICH = ["CliffGuard", "BanditDesigner"]

    def _facts(self, backend):
        context = ExperimentContext(tiny_scale())
        return replay_facts(
            run_designer_comparison(
                context, "R1", which=self.WHICH, backend=backend
            )
        )

    def test_serial_thread_process_identical(self):
        serial = self._facts(None)
        assert serial["BanditDesigner"][1]["rounds"] == 2
        with ThreadBackend(jobs=2) as threads:
            assert self._facts(threads) == serial
        with ProcessBackend(jobs=2) as pool:
            assert self._facts(pool) == serial


class TestKillResume:
    def test_crash_at_every_window_boundary(self, tmp_path):
        scale = tiny_scale()
        which = ["BanditDesigner"]
        baseline = run_designer_comparison(
            ExperimentContext(scale), "R1", which=which
        )
        transitions = len(baseline.run("BanditDesigner").windows)
        assert transitions >= 2
        for crash_after in range(1, transitions + 1):
            path = tmp_path / f"bandit-{crash_after}.ckpt"
            crashing = RunCheckpointer(path, crash_after=crash_after)
            context = ExperimentContext(scale)
            # The crash fires right after the N-th snapshot lands (the
            # final transition's write included), so every sweep point
            # raises — the snapshot just written is durable.
            with pytest.raises(SimulatedCrash):
                run_designer_comparison(
                    context, "R1", which=which, checkpointer=crashing
                )
            resumed = run_designer_comparison(
                ExperimentContext(scale),
                "R1",
                which=which,
                checkpointer=RunCheckpointer(path, resume=True),
            )
            assert replay_facts(resumed) == replay_facts(baseline)


class TestServeLearner:
    """The daemon wiring: in-process re-designs, boundary feedback, and
    learner state riding in the serve checkpoints (docs/serving.md)."""

    TINY = dict(
        workload="ECOMMERCE",
        days=56,
        window_days=14,
        queries_per_day=5,
        n_samples=2,
        iterations=1,
        legacy_tables=5,
        seed=42,
        backend=None,
    )

    @classmethod
    def daemon(cls):
        import repro
        from repro import RunConfig, ServeConfig

        session = repro.serve_session(
            RunConfig(**cls.TINY),
            ServeConfig(
                designer="BanditDesigner",
                policy="periodic",
                every=1,
                swap_mode="boundary",
                min_window_queries=1,
            ),
        )
        return session.daemon()

    @staticmethod
    def normalize(outcome):
        return (
            outcome.position,
            outcome.windows,
            outcome.triggers,
            outcome.redesigns_launched,
            outcome.redesigns_failed,
            outcome.swaps,
            outcome.final_epoch,
            outcome.final_design_digest,
            outcome.structure_count,
            outcome.design_price_bytes,
            tuple(
                (p.position, p.timestamp, p.epoch, p.cost_ms)
                for p in outcome.priced
            ),
        )

    def test_learner_attached_and_fed(self):
        daemon = self.daemon()
        assert daemon.learner is not None
        assert daemon.learner.learns_online
        outcome = daemon.run()
        assert outcome.swaps >= 1
        assert daemon.learner.observations >= outcome.windows - 1
        assert daemon.learner.rounds == outcome.redesigns_launched

    def test_kill_resume_bit_identical(self, tmp_path):
        baseline_daemon = self.daemon()
        baseline_daemon.checkpointer = RunCheckpointer(tmp_path / "count")
        baseline = self.normalize(baseline_daemon.run())
        baseline_digest = baseline_daemon.learner.model_digest()
        writes = baseline_daemon.checkpointer.writes
        assert writes >= 3
        for boundary in range(1, writes + 1):
            path = tmp_path / f"crash-{boundary}"
            crashed = self.daemon()
            crashed.checkpointer = RunCheckpointer(path, crash_after=boundary)
            with pytest.raises(SimulatedCrash):
                crashed.run()
            resumed = self.daemon()
            resumed.checkpointer = RunCheckpointer(path, resume=True)
            outcome = resumed.run()
            assert outcome.resumed
            assert self.normalize(outcome) == baseline, (
                f"diverged at write {boundary}"
            )
            assert resumed.learner.model_digest() == baseline_digest


class TestFeatureExtraction:
    @staticmethod
    def _evaluation(base, matrix, weights, sizes):
        return CandidateEvaluation(
            candidates=list(range(matrix.shape[0])),
            sqls=[f"q{i}" for i in range(matrix.shape[1])],
            weights=weights,
            base_costs=base,
            matrix=matrix,
            sizes=sizes,
        )

    @given(
        data=st.data(),
        n_candidates=st.integers(min_value=1, max_value=6),
        n_queries=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_features_bounded_and_finite(self, data, n_candidates, n_queries):
        base = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1e4),
                    min_size=n_queries,
                    max_size=n_queries,
                )
            )
        )
        weights = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0),
                    min_size=n_queries,
                    max_size=n_queries,
                )
            )
        )
        cells = data.draw(
            st.lists(
                st.one_of(
                    st.floats(min_value=0.0, max_value=2e4), st.just(np.inf)
                ),
                min_size=n_candidates * n_queries,
                max_size=n_candidates * n_queries,
            )
        )
        matrix = np.array(cells).reshape(n_candidates, n_queries)
        sizes = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=1.0, max_value=1e9),
                    min_size=n_candidates,
                    max_size=n_candidates,
                )
            )
        )
        evaluation = self._evaluation(base, matrix, weights, sizes)
        features = extract_features(evaluation, budget_bytes=10**8)
        assert features.shape == (n_candidates, FEATURE_DIM)
        assert np.isfinite(features).all()
        # bias fixed; coverage, best-rel, and size fractions live in [0, 1]
        assert (features[:, 0] == 1.0).all()
        assert (features[:, 3] >= 0).all() and (features[:, 3] <= 1 + 1e-9).all()
        assert (features[:, 4] >= 0).all() and (features[:, 4] <= 1 + 1e-9).all()
        assert (features[:, 5] >= 0).all() and (features[:, 5] <= 1.0).all()

    def test_benefit_and_penalty_split(self):
        base = np.array([10.0, 10.0])
        weights = np.array([1.0, 1.0])
        # candidate 0 halves query 0 and leaves query 1; candidate 1
        # regresses both (pure maintenance drag).
        matrix = np.array([[5.0, 10.0], [12.0, 14.0]])
        sizes = np.array([100.0, 100.0])
        features = extract_features(
            self._evaluation(base, matrix, weights, sizes), budget_bytes=1000
        )
        assert features[0, 1] == pytest.approx(0.25)  # benefit 5/20
        assert features[0, 2] == 0.0
        assert features[1, 1] == 0.0
        assert features[1, 2] == pytest.approx(0.3)  # penalty 6/20
        assert features[0, 3] == pytest.approx(0.5)  # covers 1 of 2 queries
        assert features[1, 3] == 0.0
