"""Cost-model tests: profiles, cliffs, monotonicity, and estimated-vs-real
work orderings."""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database
from repro.engine.design import PhysicalDesign
from repro.engine.executor import ColumnarExecutor
from repro.engine.optimizer import ColumnarCostModel
from repro.engine.projection import Projection, SortColumn
from repro.engine.storage import ColumnarDatabase


@pytest.fixture
def model(sales_schema) -> ColumnarCostModel:
    return ColumnarCostModel(sales_schema)


class TestProfiles:
    def test_anchor_and_needed_columns(self, model):
        profile = model.profile(
            "SELECT sales.store, SUM(sales.amount) FROM sales "
            "WHERE sales.day = 5 GROUP BY sales.store"
        )
        assert profile.anchor.table == "sales"
        assert profile.anchor.needed_columns == {"store", "amount", "day"}
        assert profile.group_by == ("store",)
        assert profile.has_aggregates

    def test_eq_and_range_classification(self, model):
        profile = model.profile(
            "SELECT sales.amount FROM sales WHERE sales.store = 1 AND sales.day < 100"
        )
        assert "store" in profile.anchor.eq_map
        assert "day" in profile.anchor.range_map

    def test_dimension_access(self, model):
        profile = model.profile(
            "SELECT sales.amount FROM sales JOIN stores ON sales.store = stores.store_id "
            "WHERE stores.region = 2"
        )
        assert len(profile.dimensions) == 1
        dim = profile.dimensions[0]
        assert dim.table == "stores"
        assert "region" in dim.eq_map

    def test_unknown_columns_ignored(self, model):
        profile = model.profile("SELECT sales.amount FROM sales WHERE sales.zzz = 1")
        assert "zzz" not in profile.anchor.needed_columns
        assert profile.anchor.total_selectivity == 1.0

    def test_unknown_table_raises(self, model):
        with pytest.raises(ValueError):
            model.profile("SELECT x FROM nope")

    def test_profiles_cached_by_text(self, model):
        sql = "SELECT sales.amount FROM sales"
        assert model.profile(sql) is model.profile(sql)

    def test_group_cardinality_capped_by_rows(self, model):
        profile = model.profile(
            "SELECT sales.product, COUNT(*) FROM sales GROUP BY sales.product"
        )
        assert profile.group_cardinality <= profile.anchor.row_count


class TestCliffs:
    """The cost surface must exhibit the paper's coverage cliffs."""

    def test_covering_projection_much_cheaper(self, sales_schema):
        # Use benchmark-scale declared statistics: at tiny row counts the
        # fixed per-query overhead hides the cliff.
        from repro.catalog.schema import Schema, Table

        big = Schema()
        original = sales_schema.table("sales")
        big.add_table(Table("sales", list(original.columns), row_count=5_000_000))
        model = ColumnarCostModel(big)
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.product = 7"
        covered = PhysicalDesign.of(
            Projection("sales", ("product", "amount"), (SortColumn("product"),))
        )
        assert model.query_cost(sql, PhysicalDesign.empty()) > 10 * model.query_cost(
            sql, covered
        )

    def test_non_covering_projection_is_ignored(self, model):
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.product = 7"
        useless = PhysicalDesign.of(
            Projection("sales", ("product", "day"), (SortColumn("product"),))
        )  # covers product but not amount
        assert model.query_cost(sql, useless) == pytest.approx(
            model.query_cost(sql, PhysicalDesign.empty())
        )

    def test_wrong_sort_order_gives_no_prefix_benefit(self, model):
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.product = 7"
        wrong_sort = PhysicalDesign.of(
            Projection("sales", ("day", "product", "amount"), (SortColumn("day"),))
        )
        right_sort = PhysicalDesign.of(
            Projection("sales", ("product", "amount"), (SortColumn("product"),))
        )
        assert model.query_cost(sql, right_sort) < model.query_cost(sql, wrong_sort)

    def test_design_never_hurts(self, model):
        """Adding structures can only reduce estimated cost (min-choice)."""
        sql = "SELECT sales.store, SUM(sales.amount) FROM sales WHERE sales.day < 50 GROUP BY sales.store"
        empty_cost = model.query_cost(sql, PhysicalDesign.empty())
        design = PhysicalDesign.empty()
        for projection in [
            Projection("sales", ("day", "store", "amount"), (SortColumn("day"),)),
            Projection("sales", ("store", "day", "amount"), (SortColumn("store"),)),
        ]:
            design = design.with_projection(projection)
            assert model.query_cost(sql, design) <= empty_cost + 1e-9
            empty_cost = model.query_cost(sql, design)


class TestMonotonicity:
    def test_more_selective_prefix_is_cheaper(self, model):
        narrow = model.query_cost(
            "SELECT SUM(sales.amount) FROM sales WHERE sales.day BETWEEN 0 AND 3",
            PhysicalDesign.of(
                Projection("sales", ("day", "amount"), (SortColumn("day"),))
            ),
        )
        wide = model.query_cost(
            "SELECT SUM(sales.amount) FROM sales WHERE sales.day BETWEEN 0 AND 180",
            PhysicalDesign.of(
                Projection("sales", ("day", "amount"), (SortColumn("day"),))
            ),
        )
        assert narrow < wide

    def test_wider_reads_cost_more(self, model):
        one = model.query_cost("SELECT sales.amount FROM sales", PhysicalDesign.empty())
        three = model.query_cost(
            "SELECT sales.amount, sales.day, sales.product FROM sales",
            PhysicalDesign.empty(),
        )
        assert three > one

    def test_sorted_group_by_cheaper_than_hash(self, model):
        # Compare the projections directly: query_cost takes the min with
        # the super-projection, which happens to be sorted by ``store``.
        sql = "SELECT sales.product, SUM(sales.amount) FROM sales GROUP BY sales.product"
        profile = model.profile(sql)
        sorted_proj = Projection(
            "sales", ("product", "amount"), (SortColumn("product"),)
        )
        hash_proj = Projection("sales", ("amount", "product"), (SortColumn("amount"),))
        assert model.projection_cost(profile, sorted_proj) < model.projection_cost(
            profile, hash_proj
        )

    def test_join_adds_cost(self, model):
        plain = model.query_cost(
            "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 1",
            PhysicalDesign.empty(),
        )
        joined = model.query_cost(
            "SELECT SUM(sales.amount) FROM sales JOIN stores ON sales.store = stores.store_id "
            "WHERE sales.store = 1",
            PhysicalDesign.empty(),
        )
        assert joined > plain


class TestWorkloadCost:
    def test_weighted_average(self, model):
        from repro.workload.query import WorkloadQuery

        cheap = "SELECT sales.amount FROM sales WHERE sales.store = 1"
        queries = [WorkloadQuery(sql=cheap, frequency=3.0)]
        report = model.workload_cost(queries, PhysicalDesign.empty())
        assert report.average_ms == pytest.approx(report.per_query_ms[0])
        assert report.total_ms == pytest.approx(3.0 * report.per_query_ms[0])

    def test_accepts_raw_sql_strings(self, model):
        report = model.workload_cost(
            ["SELECT sales.amount FROM sales"], PhysicalDesign.empty()
        )
        assert len(report.per_query_ms) == 1
        assert report.max_ms == report.per_query_ms[0]

    def test_empty_workload(self, model):
        report = model.workload_cost([], PhysicalDesign.empty())
        assert report.average_ms == 0.0
        assert report.max_ms == 0.0


class TestEstimateVsReality:
    """Cost-model *orderings* must agree with actually measured work."""

    def test_choose_projection_minimizes_real_rows_scanned(
        self, sales_schema, sales_data
    ):
        database = ColumnarDatabase(sales_schema, sales_data)
        executor = ColumnarExecutor(database)
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.product = 7"
        design = PhysicalDesign.of(
            Projection("sales", ("product", "amount"), (SortColumn("product"),)),
            Projection("sales", ("day", "product", "amount"), (SortColumn("day"),)),
        )
        result = executor.execute(sql, design)
        # The optimizer must pick the product-sorted projection, and real
        # scanned rows must be far below the table size.
        assert result.stats.projection.sort_key[0] == "product"
        assert result.stats.rows_scanned < 0.2 * 5000

    def test_cost_ordering_matches_scan_ordering(self, sales_schema, sales_data):
        database = ColumnarDatabase(sales_schema, sales_data)
        executor = ColumnarExecutor(database)
        model = executor.cost_model
        sql = "SELECT SUM(sales.amount) FROM sales WHERE sales.store = 3"
        fast_design = PhysicalDesign.of(
            Projection("sales", ("store", "amount"), (SortColumn("store"),))
        )
        slow_design = PhysicalDesign.of(
            Projection("sales", ("amount", "store"), (SortColumn("amount"),))
        )
        cost_fast = model.query_cost(sql, fast_design)
        cost_slow = model.query_cost(sql, slow_design)
        rows_fast = executor.execute(sql, fast_design).stats.rows_scanned
        rows_slow = executor.execute(sql, slow_design).stats.rows_scanned
        assert (cost_fast < cost_slow) == (rows_fast < rows_slow)
