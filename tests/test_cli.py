"""CLI tests (micro scale so they stay fast)."""

import pytest

from repro.cli import build_parser, main

FAST = [
    "--days", "84", "--queries-per-day", "6", "--samples", "3",
    "--transitions", "1", "--seed", "2",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.workload == "R1"
        assert args.days == 196

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--workload", "XX"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", *FAST]) == 0
        out = capsys.readouterr().out
        assert "schema:" in out
        assert "Γ" in out

    def test_drift(self, capsys):
        assert main(["drift", *FAST]) == 0
        out = capsys.readouterr().out
        assert "R1" in out and "S1" in out and "S2" in out

    def test_design_nominal(self, capsys):
        assert main(["design", "--designer", "ExistingDesigner", "--limit", "3", *FAST]) == 0
        out = capsys.readouterr().out
        assert "CREATE PROJECTION" in out

    def test_design_rowstore(self, capsys):
        assert (
            main(
                [
                    "design",
                    "--engine",
                    "rowstore",
                    "--designer",
                    "ExistingDesigner",
                    *FAST,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "CREATE" in out

    def test_compare_small(self, capsys):
        assert (
            main(["compare", *FAST]) == 0
        )
        out = capsys.readouterr().out
        assert "CliffGuard" in out and "NoDesign" in out

    def test_stats_renders_metrics_registry(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["stats", "--backend", "serial", "--trace", str(trace_path), *FAST]) == 0
        out = capsys.readouterr().out
        assert "Metrics registry" in out
        assert "costing.query_requests" in out
        assert "parallel.map_calls" in out

        import json

        events = [json.loads(line) for line in trace_path.read_text().splitlines()]
        names = {e["event"] for e in events}
        # The acceptance set: design-loop, cache, chunk, and redesign events.
        assert {"iteration", "cache_fill", "chunk_dispatch", "redesign"} <= names
        assert all("seq" in e and "t" in e for e in events)

    def test_trace_flag_appends_across_runs(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["info", "--trace", str(trace_path), *FAST]) == 0
        assert main(["info", "--trace", str(trace_path), *FAST]) == 0
        # info emits no events, but both runs must leave the file parseable.
        import json

        for line in trace_path.read_text().splitlines():
            json.loads(line)


class TestCheckpointFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["gamma"])
        assert args.checkpoint is None
        assert args.checkpoint_every == 1
        assert args.resume is False

    def test_parser_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["gamma", "--checkpoint", "run.ckpt", "--checkpoint-every", "3", "--resume"]
        )
        assert args.checkpoint == "run.ckpt"
        assert args.checkpoint_every == 3
        assert args.resume is True

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            main(["info", "--resume", *FAST])

    def test_gamma_checkpoint_then_resume_matches(self, capsys, tmp_path):
        path = tmp_path / "gamma.ckpt"
        assert main(["gamma", *FAST]) == 0
        baseline = capsys.readouterr().out
        assert main(["gamma", "--checkpoint", str(path), *FAST]) == 0
        capsys.readouterr()
        assert path.exists()
        assert (
            main(["gamma", "--checkpoint", str(path), "--resume", *FAST]) == 0
        )
        resumed = capsys.readouterr().out
        # The resumed run replays entirely from the snapshot and must
        # print the exact same deterministic table.
        assert resumed == baseline
