"""Property-based executor testing: random queries in the subset must
produce identical results with and without random physical designs."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.design import PhysicalDesign
from repro.engine.executor import ColumnarExecutor
from repro.engine.projection import Projection, SortColumn
from repro.engine.storage import ColumnarDatabase

COLUMNS = ["store", "product", "amount", "day"]
AGGS = ["SUM", "MIN", "MAX", "AVG", "COUNT"]


@st.composite
def queries(draw):
    """A random aggregate-or-scan query over the sales table."""
    group = draw(st.sampled_from([None, "store", "product", "day"]))
    agg_col = draw(st.sampled_from(["amount", "day", "product"]))
    agg = draw(st.sampled_from(AGGS))
    select = []
    if group:
        select.append(f"sales.{group}")
    select.append(f"{agg}(sales.{agg_col})")
    parts = [f"SELECT {', '.join(select)} FROM sales"]
    predicates = []
    if draw(st.booleans()):
        col = draw(st.sampled_from(["store", "product", "day"]))
        value = draw(st.integers(0, 60))
        op = draw(st.sampled_from(["=", "<", ">="]))
        predicates.append(f"sales.{col} {op} {value}")
    if draw(st.booleans()):
        low = draw(st.integers(0, 100))
        span = draw(st.integers(0, 80))
        predicates.append(f"sales.day BETWEEN {low} AND {low + span}")
    if predicates:
        parts.append("WHERE " + " AND ".join(predicates))
    if group:
        parts.append(f"GROUP BY sales.{group}")
    return " ".join(parts)


@st.composite
def designs(draw):
    """A random small design over the sales table."""
    count = draw(st.integers(0, 2))
    projections = []
    for _ in range(count):
        cols = draw(
            st.lists(st.sampled_from(COLUMNS), min_size=2, max_size=4, unique=True)
        )
        sort = draw(st.sampled_from(cols))
        ordered = [sort] + [c for c in cols if c != sort]
        projections.append(
            Projection("sales", tuple(ordered), (SortColumn(sort),))
        )
    return PhysicalDesign(frozenset(projections))


def normalize(rows):
    return sorted(
        tuple(round(float(v), 5) if isinstance(v, (int, float, np.number)) else v for v in row)
        for row in rows
    )


class TestDesignIndependenceProperty:
    @given(sql=queries(), design=designs())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_query_random_design(self, sales_schema, sales_data, sql, design):
        # Build once per example: cheap at 5k rows, and keeps hypothesis
        # happy about fixture scoping.
        executor = ColumnarExecutor(ColumnarDatabase(sales_schema, sales_data))
        baseline = normalize(executor.execute(sql).rows)
        designed = normalize(executor.execute(sql, design).rows)
        assert len(baseline) == len(designed)
        for b, d in zip(baseline, designed):
            assert b == pytest.approx(d, rel=1e-6, abs=1e-6)
