"""Shared fixtures: small schemas, generated data, and tiny traces."""

from __future__ import annotations

import pytest

from repro.catalog import Column, ColumnType, ForeignKey, Schema, Table
from repro.catalog.datagen import generate_database
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile


@pytest.fixture
def sales_schema() -> Schema:
    """A two-table schema used across engine unit tests."""
    schema = Schema()
    schema.add_table(
        Table(
            "sales",
            [
                Column("store", ColumnType.INT, ndv=50),
                Column("product", ColumnType.INT, ndv=200),
                Column("amount", ColumnType.FLOAT, ndv=1000),
                Column("day", ColumnType.DATE, ndv=365),
                Column("channel", ColumnType.STRING, ndv=5),
                Column("flag", ColumnType.BOOL, ndv=2),
            ],
            row_count=5_000,
            foreign_keys=[ForeignKey("store", "stores", "store_id")],
        )
    )
    schema.add_table(
        Table(
            "stores",
            [
                Column("store_id", ColumnType.INT, ndv=50),
                Column("region", ColumnType.INT, ndv=5),
                Column("size_class", ColumnType.INT, ndv=3),
            ],
            row_count=50,
        )
    )
    return schema


@pytest.fixture
def sales_data(sales_schema):
    """Deterministic generated data for :func:`sales_schema`."""
    return generate_database(sales_schema, seed=11)


@pytest.fixture(scope="session")
def tiny_star():
    """A small star schema + roles for workload/designer tests."""
    return build_star_schema(
        fact_tables=2,
        fact_rows=1_000_000,
        fact_attributes=12,
        legacy_tables=5,
        legacy_columns=4,
        seed=3,
    )


@pytest.fixture(scope="session")
def tiny_trace(tiny_star):
    """A 70-day trace on the tiny star schema (deterministic)."""
    schema, roles = tiny_star
    profile = r1_profile(queries_per_day=8, topic_count=3, templates_per_topic=4)
    generator = TraceGenerator(schema, roles, profile, seed=5)
    return generator.generate(days=70)


@pytest.fixture
def columnar_adapter(tiny_star):
    """Columnar adapter over the tiny star schema (declared statistics)."""
    from repro.designers.base import ColumnarAdapter, default_budget_bytes
    from repro.engine.optimizer import ColumnarCostModel

    schema, _ = tiny_star
    return ColumnarAdapter(
        ColumnarCostModel(schema), default_budget_bytes(schema, 0.5)
    )


@pytest.fixture
def rowstore_adapter(tiny_star):
    """Row-store adapter over the tiny star schema."""
    from repro.designers.base import RowstoreAdapter, default_budget_bytes
    from repro.rowstore.optimizer import RowstoreCostModel

    schema, _ = tiny_star
    return RowstoreAdapter(
        RowstoreCostModel(schema), default_budget_bytes(schema, 0.5)
    )


@pytest.fixture
def tiny_windows(tiny_trace):
    """28-day windows of the tiny trace."""
    from repro.workload.windows import split_windows

    return split_windows(tiny_trace, 28)
