"""Tests for the execution backends (repro.parallel).

The fault-injection workers are pid-gated: they fail only inside a pool
worker process, so the serial retry *in the parent* succeeds — exactly the
degradation path the backends promise.
"""

import os
import time
from collections import Counter

import pytest

from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_from_env,
    chunk_count,
    contiguous_chunks,
    derive_seed,
    resolve_backend,
)
from repro.parallel.backends import ENV_BACKEND, ENV_JOBS

_PARENT_PID = os.getpid()


def _double(task):
    return task * 2


def _fail_in_worker(task):
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("injected worker failure")
    return task * 2


def _exit_in_worker(task):
    if os.getpid() != _PARENT_PID:
        os._exit(13)
    return task * 2


def _slow_in_worker(task):
    if os.getpid() != _PARENT_PID:
        time.sleep(2.0)
    return task * 2


_ATTEMPTS = Counter()


def _fail_first_attempt(task):
    _ATTEMPTS[task] += 1
    if _ATTEMPTS[task] == 1:
        raise RuntimeError("injected first-attempt failure")
    return task * 2


class TestPartition:
    def test_chunks_cover_in_order(self):
        items = list(range(17))
        chunks = contiguous_chunks(items, 5)
        assert [x for chunk in chunks for x in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_chunks_deterministic(self):
        assert contiguous_chunks(list(range(10)), 3) == contiguous_chunks(
            list(range(10)), 3
        )

    def test_more_chunks_than_items(self):
        chunks = contiguous_chunks([1, 2], 8)
        assert [x for chunk in chunks for x in chunk] == [1, 2]
        assert all(chunk for chunk in chunks)

    def test_chunk_count_bounds(self):
        assert chunk_count(0, 4) == 0
        assert 1 <= chunk_count(3, 4) <= 3
        assert chunk_count(1000, 4) <= 1000
        assert chunk_count(1000, 1) == 1

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(42, 1, 2) == derive_seed(42, 1, 2)
        assert derive_seed(42, 1, 2) != derive_seed(42, 2, 1)
        assert derive_seed(42, 0) != derive_seed(43, 0)
        assert 0 <= derive_seed(7, 5) < 2**63


class TestMapContract:
    @pytest.mark.parametrize(
        "make",
        [SerialBackend, lambda: ThreadBackend(jobs=3), lambda: ProcessBackend(jobs=2)],
        ids=["serial", "thread", "process"],
    )
    def test_map_preserves_order(self, make):
        with make() as backend:
            assert backend.map(_double, list(range(20))) == [
                i * 2 for i in range(20)
            ]
            assert backend.map(_double, []) == []
        assert backend.stats.map_calls == 2
        assert backend.stats.tasks == 20
        assert backend.stats.retried == 0

    def test_serial_forces_single_job(self):
        assert SerialBackend(jobs=8).jobs == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ThreadBackend(jobs=-1)
        with pytest.raises(ValueError):
            SerialBackend(task_timeout=-1.0)


class TestFaultTolerance:
    def test_process_task_failure_retried_serially(self):
        with ProcessBackend(jobs=2) as backend:
            assert backend.map(_fail_in_worker, [1, 2, 3]) == [2, 4, 6]
        assert backend.stats.retried == 3

    def test_process_worker_crash_recovered(self):
        # os._exit kills the worker: the pool breaks, every in-flight task
        # fails with BrokenExecutor, and all of them are retried serially.
        with ProcessBackend(jobs=2) as backend:
            assert backend.map(_exit_in_worker, [1, 2, 3, 4]) == [2, 4, 6, 8]
        assert backend.stats.retried == 4

    def test_process_timeout_falls_back_to_serial(self):
        with ProcessBackend(jobs=2, task_timeout=0.2) as backend:
            assert backend.map(_slow_in_worker, [5, 6]) == [10, 12]
        assert backend.stats.timeouts >= 1
        assert backend.stats.retried == 2

    def test_thread_task_failure_retried_serially(self):
        _ATTEMPTS.clear()
        with ThreadBackend(jobs=2) as backend:
            assert backend.map(_fail_first_attempt, [10, 11]) == [20, 22]
        assert backend.stats.retried == 2

    def test_pool_usable_after_shutdown(self):
        backend = ThreadBackend(jobs=2)
        assert backend.map(_double, [1]) == [2]
        backend.shutdown()
        assert backend.map(_double, [2]) == [4]
        backend.shutdown()


class TestResolution:
    def test_resolve_names(self):
        assert resolve_backend(None) is None
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread", jobs=3), ThreadBackend)
        assert isinstance(resolve_backend("process", jobs=2), ProcessBackend)
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        with pytest.raises(ValueError):
            resolve_backend(42)

    def test_env_selection(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert backend_from_env() is None
        assert resolve_backend("auto") is None

        monkeypatch.setenv(ENV_BACKEND, "process")
        monkeypatch.setenv(ENV_JOBS, "2")
        backend = backend_from_env()
        assert isinstance(backend, ProcessBackend)
        assert backend.jobs == 2

        via_auto = resolve_backend("auto")
        assert isinstance(via_auto, ProcessBackend)
        assert via_auto.jobs == 2
